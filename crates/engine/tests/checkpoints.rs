//! Checkpointed-container acceptance suite: round-trips across the
//! interval × thread matrix, byte-identity at every thread count,
//! streaming parity, footer hardening (corruption, truncation, forged
//! offsets), seekable range extraction with bounded I/O, and inspection.

use std::io::Cursor;

use tcgen_engine::{
    compress_stream, decompress_stream, extract_range, inspect, Engine, EngineOptions, Error,
    Recorder, StreamError, SEEK_BYTES_READ,
};
use tcgen_spec::{parse, TraceSpec};

/// A fixture spec with the same record shape as the presets (32-bit
/// header, 32-bit PC field, 64-bit data field) but small tables, so the
/// per-checkpoint predictor snapshots stay a few KB and the suite runs
/// quickly in debug builds. Checkpoint behaviour is table-size-agnostic;
/// the preset specs are exercised by the golden and pipeline suites.
const SPEC: &str = "TCgen Trace Specification;\n\
    32-Bit Header;\n\
    32-Bit Field 1 = {L1 = 1, L2 = 64: LV[2], FCM1[2]};\n\
    64-Bit Field 2 = {L1 = 64, L2 = 256: LV[2], ST[2], DFCM2[2]};\n\
    PC = Field 1;\n";

fn spec() -> TraceSpec {
    parse(SPEC).expect("fixture spec parses")
}

fn demo_trace(records: usize) -> Vec<u8> {
    let mut raw = vec![9, 8, 7, 6];
    for i in 0..records as u64 {
        raw.extend_from_slice(&(0x40_0000u32 + (i as u32 % 13) * 4).to_le_bytes());
        raw.extend_from_slice(&(0x2000 + i * 8 + (i % 5)).to_le_bytes());
    }
    raw
}

fn options(checkpoint_blocks: usize, threads: usize, model: usize) -> EngineOptions {
    EngineOptions {
        checkpoint_blocks,
        block_records: 100,
        threads,
        model_threads: model,
        ..EngineOptions::tcgen()
    }
}

/// Locates the footer region (everything after the end marker) from the
/// fixed tail: the last 12 bytes are crc, body_len, magic.
fn footer_start(packed: &[u8]) -> usize {
    assert_eq!(&packed[packed.len() - 4..], b"TCGF", "checkpointed container ends in TCGF");
    let at = packed.len() - 8;
    let body_len = u32::from_le_bytes(packed[at..at + 4].try_into().unwrap()) as usize;
    packed.len() - body_len - 12
}

/// The same reflected IEEE CRC-32 the container uses, reimplemented here
/// so forgery tests can produce structurally valid but lying footers.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xedb8_8320 & 0u32.wrapping_sub(crc & 1));
        }
    }
    !crc
}

/// Every checkpoint interval round-trips losslessly at every thread
/// count, and the container bytes do not depend on threads — the same
/// guarantee legacy containers have always had.
#[test]
fn checkpointed_roundtrip_across_interval_and_thread_matrix() {
    let raw = demo_trace(1_200); // 12 blocks of 100
    for interval in [1usize, 4, 5, 50] {
        let mut baseline: Option<Vec<u8>> = None;
        for (threads, model) in [(1usize, 1usize), (1, 3), (4, 1), (4, 2)] {
            let engine = Engine::new(spec(), options(interval, threads, model));
            let packed = engine.compress(&raw).expect("compress");
            assert_ne!(packed[5] & 0b0010_0000, 0, "checkpoint flag set");
            assert_eq!(
                engine.decompress(&packed).expect("decompress"),
                raw,
                "interval {interval}, threads {threads}/{model}"
            );
            match &baseline {
                None => baseline = Some(packed),
                Some(b) => assert_eq!(
                    &packed, b,
                    "interval {interval} bytes differ at threads {threads}/{model}"
                ),
            }
        }
    }
}

/// A checkpointed container decodes on engines with different (or zero)
/// checkpoint settings — the decoder follows the container flag, never
/// the local knob — and the decoded bytes equal the legacy container's.
#[test]
fn checkpointed_and_legacy_containers_decode_identically() {
    let raw = demo_trace(800);
    let checkpointed = Engine::new(spec(), options(2, 1, 1)).compress(&raw).expect("compress");
    let legacy = Engine::new(spec(), options(0, 1, 1)).compress(&raw).expect("compress");
    assert_ne!(checkpointed, legacy, "checkpointing must change the container");
    for (threads, model) in [(1usize, 1usize), (4, 2)] {
        for reader_interval in [0usize, 2, 7] {
            let engine = Engine::new(spec(), options(reader_interval, threads, model));
            assert_eq!(engine.decompress(&checkpointed).expect("ckpt decode"), raw);
            assert_eq!(engine.decompress(&legacy).expect("legacy decode"), raw);
        }
    }
}

/// Streaming compression emits byte-identical checkpointed containers,
/// and streaming decompression replays them (skipping the frames it
/// doesn't need while verifying the footer).
#[test]
fn streaming_matches_in_memory_for_checkpointed_containers() {
    let raw = demo_trace(1_111);
    for threads in [1usize, 4] {
        let opts = options(3, threads, 1);
        let in_memory = Engine::new(spec(), opts).compress(&raw).expect("compress");
        let mut streamed = Vec::new();
        compress_stream(&spec(), &opts, &mut raw.as_slice(), &mut streamed)
            .expect("streamed compress");
        assert_eq!(streamed, in_memory, "threads {threads}");
        let mut restored = Vec::new();
        decompress_stream(&spec(), &opts, &mut in_memory.as_slice(), &mut restored)
            .expect("streamed decompress");
        assert_eq!(restored, raw, "threads {threads}");
    }
}

/// Any single-byte corruption or truncation of the footer is rejected,
/// in memory and streaming.
#[test]
fn corrupt_or_truncated_footers_rejected() {
    let raw = demo_trace(400);
    let opts = options(1, 1, 1);
    let engine = Engine::new(spec(), opts);
    let packed = engine.compress(&raw).expect("compress");
    let start = footer_start(&packed);
    for i in start..packed.len() {
        let mut bad = packed.clone();
        bad[i] ^= 0x41;
        assert!(engine.decompress(&bad).is_err(), "flipped footer byte {i} accepted");
    }
    for cut in [start, start + 5, packed.len() - 4, packed.len() - 1] {
        assert!(engine.decompress(&packed[..cut]).is_err(), "footer cut at {cut} accepted");
        let mut restored = Vec::new();
        assert!(
            decompress_stream(&spec(), &opts, &mut &packed[..cut], &mut restored).is_err(),
            "streamed footer cut at {cut} accepted"
        );
    }
}

/// A footer whose CRC is valid but whose checkpoint offset lies — the
/// forgery a CRC alone cannot catch — is rejected against the structure
/// the decoder actually walked.
#[test]
fn forged_checkpoint_offset_rejected() {
    let raw = demo_trace(600); // 6 blocks, checkpoints before blocks 2 and 4
    let opts = options(2, 1, 1);
    let engine = Engine::new(spec(), opts);
    let packed = engine.compress(&raw).expect("compress");
    let start = footer_start(&packed);
    let body_end = packed.len() - 12;
    let body = &packed[start..body_end];
    let n_blocks = u32::from_le_bytes(body[..4].try_into().unwrap()) as usize;
    let ckpt_count_at = 4 + n_blocks * 12;
    let n_ckpts =
        u32::from_le_bytes(body[ckpt_count_at..ckpt_count_at + 4].try_into().unwrap());
    assert_eq!(n_ckpts, 2, "expected two checkpoints in the fixture");
    // First checkpoint entry: u32 block_index, then u64 offset.
    let offset_at = start + ckpt_count_at + 4 + 4;
    let mut forged = packed.clone();
    let lying = u64::from_le_bytes(packed[offset_at..offset_at + 8].try_into().unwrap()) + 1;
    forged[offset_at..offset_at + 8].copy_from_slice(&lying.to_le_bytes());
    let crc = crc32(&forged[start..body_end]);
    forged[body_end..body_end + 4].copy_from_slice(&crc.to_le_bytes());
    let err = engine.decompress(&forged).expect_err("forged offset must fail");
    assert!(matches!(err, Error::Corrupt(_)), "{err:?}");
    let mut restored = Vec::new();
    assert!(
        decompress_stream(&spec(), &opts, &mut forged.as_slice(), &mut restored).is_err(),
        "streamed decode accepted the forged offset"
    );
}

/// Range extraction matches a full decompress slice for ranges landing
/// in every span, and reads only the footer plus the covering spans —
/// proven by the I/O byte counter, not by trusting the implementation.
#[test]
fn extract_range_matches_full_decode_and_bounds_io() {
    let raw = demo_trace(1_600); // 16 blocks of 100, checkpoints every 4
    let opts = options(4, 1, 1);
    let engine = Engine::new(spec(), opts);
    let packed = engine.compress(&raw).expect("compress");
    let record_len = spec().record_bytes() as usize;
    let body = &raw[4..];
    let slice = |a: usize, b: usize| body[a * record_len..b * record_len].to_vec();
    for (a, b) in [(0usize, 10usize), (390, 410), (1000, 1000), (1560, 1600), (0, 1600)] {
        let rec = Recorder::new();
        let got = extract_range(
            &spec(),
            &opts,
            &mut Cursor::new(&packed),
            a as u64..b as u64,
            Some(&rec),
        )
        .unwrap_or_else(|e| panic!("extract {a}..{b}: {e}"));
        assert_eq!(got, slice(a, b), "range {a}..{b}");
    }
    // A tail range covers only the last span (blocks 12..16): the bytes
    // read must be far below the container size.
    let rec = Recorder::new();
    let counter = rec.counter(SEEK_BYTES_READ);
    let got = extract_range(&spec(), &opts, &mut Cursor::new(&packed), 1560..1600, Some(&rec))
        .expect("tail range");
    assert_eq!(got, slice(1560, 1600));
    let read = counter.get();
    assert!(
        read < packed.len() as u64 / 2,
        "tail extraction read {read} of {} container bytes — not seeking",
        packed.len()
    );

    // Out-of-range requests fail instead of clamping silently.
    assert!(extract_range(&spec(), &opts, &mut Cursor::new(&packed), 1590..1601, None).is_err());
}

/// Containers without checkpoints have no footer to seek: extraction
/// reports that clearly so callers can fall back to sequential replay.
#[test]
fn extract_range_requires_a_checkpointed_container() {
    let raw = demo_trace(500);
    let opts = options(0, 1, 1);
    let packed = Engine::new(spec(), opts).compress(&raw).expect("compress");
    let err = extract_range(&spec(), &opts, &mut Cursor::new(&packed), 0..10, None)
        .expect_err("no footer must fail");
    match err {
        StreamError::Codec(Error::Corrupt(msg)) => {
            assert!(msg.contains("no checkpoint footer"), "{msg}")
        }
        other => panic!("unexpected error: {other}"),
    }
}

/// `inspect` reads prelude and footer only — no spec required — and
/// reports the span structure with per-span record ranges.
#[test]
fn inspect_reports_spans_and_record_ranges() {
    let raw = demo_trace(1_200); // 12 blocks, checkpoints before 5 and 10
    let opts = options(5, 1, 1);
    let packed = Engine::new(spec(), opts).compress(&raw).expect("compress");
    let info = inspect(&mut Cursor::new(&packed)).expect("inspect");
    assert_eq!(info.version, 1);
    assert!(info.checkpointed);
    assert_eq!(info.header_len, 4);
    assert_eq!(info.n_blocks, Some(12));
    assert_eq!(info.total_records, Some(1_200));
    assert_eq!(info.file_len, packed.len() as u64);
    assert_eq!(info.spans.len(), 3);
    assert_eq!(
        info.spans.iter().map(|s| (s.start_record, s.end_record)).collect::<Vec<_>>(),
        vec![(0, 500), (500, 1_000), (1_000, 1_200)]
    );
    assert!(info.spans[0].checkpoint_offset.is_none());
    assert!(info.spans[1].checkpoint_offset.is_some());

    // Legacy containers inspect too, just without a footer.
    let legacy = Engine::new(spec(), options(0, 1, 1)).compress(&raw).expect("compress");
    let info = inspect(&mut Cursor::new(&legacy)).expect("inspect legacy");
    assert!(!info.checkpointed);
    assert_eq!(info.n_blocks, None);
    assert!(info.spans.is_empty());
}

/// The parallel span path reports how many spans it fanned out, so this
/// (with the pool-overlap unit test) demonstrates span concurrency even
/// on machines where wall-clock comparisons are meaningless.
#[test]
fn multithreaded_decompress_takes_the_span_path() {
    let raw = demo_trace(1_200);
    let packed = Engine::new(spec(), options(4, 1, 1)).compress(&raw).expect("compress");
    let rec = Recorder::new();
    let spans = rec.counter("decompress.spans");
    let engine = Engine::new(spec(), options(0, 4, 1)).with_telemetry(rec);
    assert_eq!(engine.decompress(&packed).expect("decompress"), raw);
    assert_eq!(spans.get(), 3, "12 blocks at interval 4 fan out as 3 spans");

    // Single-threaded decode replays sequentially: no span fan-out.
    let rec = Recorder::new();
    let spans = rec.counter("decompress.spans");
    let engine = Engine::new(spec(), options(0, 1, 1)).with_telemetry(rec);
    assert_eq!(engine.decompress(&packed).expect("decompress"), raw);
    assert_eq!(spans.get(), 0, "serial decode must not fan out spans");
}

/// Snapshot restore rides inside the span pool jobs, never on the
/// driver: every span — including the snapshot-restoring later ones —
/// is one `replay.span` worker job, and the pool fans out to more than
/// one worker. Combined with `span_pipeline_overlaps_spans` (which
/// proves the pool genuinely overlaps jobs), this pins that restoring a
/// checkpoint cannot serialize the span fan-out, the failure mode
/// behind the interval-8, 4-thread decompress regression.
#[test]
fn span_restore_rides_inside_concurrent_pool_jobs() {
    let raw = demo_trace(1_600); // 16 blocks of 100, checkpoints every 8
    let packed = Engine::new(spec(), options(8, 1, 1)).compress(&raw).expect("compress");
    let rec = Recorder::new();
    let engine = Engine::new(spec(), options(0, 4, 1)).with_telemetry(rec.clone());
    assert_eq!(engine.decompress(&packed).expect("decompress"), raw);
    let report = rec.report();
    let stage = report.stage("replay.span").expect("span jobs recorded");
    assert_eq!(stage.count, 2, "both spans replay as pool jobs");
    let pool = report.pools.iter().find(|p| p.label == "span").expect("span pool present");
    assert!(pool.workers > 1, "span pool must fan out, got {} worker", pool.workers);
    assert_eq!(pool.completed, 2, "every span job completed on the pool");
    // No other stage times a snapshot restore: the worker-job path is
    // the only restore path, so nothing restores on the driver thread.
    assert!(report.stage("checkpoint.unpack").is_none());
}

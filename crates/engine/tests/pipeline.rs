//! Integration tests for the chunked, multi-threaded block pipeline:
//! the container must be byte-identical for every thread count, and
//! adversarial containers must fail with errors — never panics, hangs,
//! or allocations driven by forged header fields.

use tcgen_engine::{Engine, EngineOptions, Error};
use tcgen_spec::{parse, presets, TraceSpec};

fn spec() -> TraceSpec {
    parse(presets::TCGEN_A).expect("preset parses")
}

fn demo_trace(records: usize) -> Vec<u8> {
    let mut raw = vec![9, 8, 7, 6];
    for i in 0..records as u64 {
        raw.extend_from_slice(&(0x40_0000u32 + (i as u32 % 13) * 4).to_le_bytes());
        raw.extend_from_slice(&(0x2000 + i * 8 + (i % 3)).to_le_bytes());
    }
    raw
}

fn engine(block_records: usize, threads: usize) -> Engine {
    Engine::new(spec(), EngineOptions { block_records, threads, ..EngineOptions::tcgen() })
}

fn engine_mt(block_records: usize, threads: usize, model_threads: usize) -> Engine {
    Engine::new(
        spec(),
        EngineOptions { block_records, threads, model_threads, ..EngineOptions::tcgen() },
    )
}

fn max_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(2)
}

/// The acceptance criterion of the pipeline: for every block size, every
/// thread count yields the same container bytes, and every thread count
/// can decompress them.
#[test]
fn thread_count_never_changes_the_container() {
    let raw = demo_trace(2_500);
    let n = max_threads();
    for block_records in [1usize, 7, 1024, 0] {
        let baseline = engine(block_records, 1).compress(&raw).expect("serial compress");
        for threads in [2, n] {
            let parallel = engine(block_records, threads).compress(&raw).expect("compress");
            assert_eq!(
                parallel, baseline,
                "container differs: block_records {block_records}, threads {threads}"
            );
        }
        for threads in [1, n] {
            assert_eq!(
                engine(block_records, threads).decompress(&baseline).expect("decompress"),
                raw,
                "roundtrip failed: block_records {block_records}, threads {threads}"
            );
        }
    }
}

/// The acceptance criterion of the columnar modeling stage: for every
/// block size, every (segment threads × model threads) combination
/// yields the same container bytes as the fully serial configuration,
/// and every combination decompresses them back to the trace.
#[test]
fn model_thread_count_never_changes_the_container() {
    let raw = demo_trace(2_500);
    let n = max_threads();
    for block_records in [1usize, 7, 1024, 0] {
        let baseline = engine_mt(block_records, 1, 1).compress(&raw).expect("serial compress");
        for threads in [1usize, 2] {
            for model_threads in [2usize, 3, n] {
                let packed = engine_mt(block_records, threads, model_threads)
                    .compress(&raw)
                    .expect("compress");
                assert_eq!(
                    packed, baseline,
                    "container differs: block_records {block_records}, \
                     threads {threads}, model_threads {model_threads}"
                );
            }
        }
        for (threads, model_threads) in [(1, 2), (2, 1), (2, n), (n, n)] {
            assert_eq!(
                engine_mt(block_records, threads, model_threads)
                    .decompress(&baseline)
                    .expect("decompress"),
                raw,
                "roundtrip failed: block_records {block_records}, \
                 threads {threads}, model_threads {model_threads}"
            );
        }
    }
}

#[test]
fn auto_thread_count_matches_serial_output() {
    let raw = demo_trace(1_000);
    let serial = engine(256, 1).compress(&raw).unwrap();
    let auto = engine(256, 0).compress(&raw).unwrap();
    assert_eq!(auto, serial);
}

/// Every truncation point of a multi-block container must produce an
/// error, at every thread count — never a panic or a hang.
#[test]
fn every_truncation_is_an_error() {
    let raw = demo_trace(600);
    let packed = engine(100, 1).compress(&raw).unwrap();
    for threads in [1usize, 4] {
        let eng = engine(100, threads);
        let step = (packed.len() / 97).max(1);
        for cut in (0..packed.len()).step_by(step) {
            assert!(
                eng.decompress(&packed[..cut]).is_err(),
                "accepted a {cut}-byte prefix of {} bytes (threads {threads})",
                packed.len()
            );
        }
    }
}

/// Container layout: 12-byte prelude, trace header, then per block a
/// marker byte, a u32 record count, and length-prefixed segments.
fn first_block_offset(spec: &TraceSpec) -> usize {
    12 + spec.header_bytes() as usize
}

#[test]
fn oversized_segment_length_is_rejected() {
    let raw = demo_trace(400);
    let mut packed = engine(0, 1).compress(&raw).unwrap();
    let len_at = first_block_offset(&spec()) + 5;
    packed[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    for threads in [1usize, 4] {
        let err = engine(0, threads).decompress(&packed).unwrap_err();
        assert!(
            matches!(err, Error::Truncated | Error::Corrupt(_)),
            "threads {threads}: {err}"
        );
    }
}

#[test]
fn forged_record_count_is_rejected() {
    let raw = demo_trace(400);
    let mut packed = engine(0, 1).compress(&raw).unwrap();
    let count_at = first_block_offset(&spec()) + 1;
    packed[count_at..count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    for threads in [1usize, 4] {
        // The segments genuinely hold 400 records' worth of data, so the
        // forged count must be caught when the streams come up short —
        // without allocating anywhere near u32::MAX bytes first.
        let err = engine(0, threads).decompress(&packed).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_) | Error::Post(_)), "threads {threads}: {err}");
    }
}

#[test]
fn zeroed_record_count_is_rejected() {
    let raw = demo_trace(400);
    let mut packed = engine(0, 1).compress(&raw).unwrap();
    let count_at = first_block_offset(&spec()) + 1;
    packed[count_at..count_at + 4].copy_from_slice(&0u32.to_le_bytes());
    for threads in [1usize, 4] {
        assert!(engine(0, threads).decompress(&packed).is_err(), "threads {threads}");
    }
}

#[test]
fn trailing_bytes_after_end_marker_rejected() {
    let raw = demo_trace(300);
    let mut packed = engine(100, 1).compress(&raw).unwrap();
    packed.push(0x00);
    for threads in [1usize, 4] {
        let err = engine(100, threads).decompress(&packed).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "threads {threads}: {err}");
    }
}

#[test]
fn wrong_spec_hash_is_a_spec_mismatch() {
    let raw = demo_trace(50);
    let mut packed = engine(0, 1).compress(&raw).unwrap();
    packed[6] ^= 0xFF;
    for threads in [1usize, 4] {
        let err = engine(0, threads).decompress(&packed).unwrap_err();
        assert!(matches!(err, Error::SpecMismatch { .. }), "threads {threads}: {err}");
    }
}

/// Random byte flips anywhere in the container must never panic; they
/// either error out or (for flips inside compressed payloads caught by
/// CRC, or in ignorable positions) are detected downstream.
#[test]
fn random_corruption_never_panics() {
    let raw = demo_trace(500);
    let packed = engine(128, 1).compress(&raw).unwrap();
    let mut rng = 0x9E37_79B9_7F4A_7C15u64;
    // The raw trace header (after the 12-byte prelude) is stored as
    // opaque passthrough bytes with no checksum, so flips there surface
    // as a (legitimately) different trace — exempt that region.
    let header = 12..first_block_offset(&spec());
    for threads in [1usize, 4] {
        let eng = engine(128, threads);
        for _ in 0..60 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pos = (rng >> 33) as usize % packed.len();
            if header.contains(&pos) {
                continue;
            }
            let bit = 1u8 << ((rng >> 29) & 7);
            let mut bad = packed.clone();
            bad[pos] ^= bit;
            // A flip must either fail or decode back to the original
            // trace (e.g. a flip in a never-read reserved position).
            if let Ok(out) = eng.decompress(&bad) {
                assert_eq!(out, raw, "undetected corruption at byte {pos}");
            }
        }
    }
}

//! Post-compression backend acceptance suite: every profile must
//! round-trip losslessly and deterministically across the thread/block
//! matrix, record its backend id in the container flags, and decode on
//! any configuration because dispatch reads the container — while
//! mismatched, truncated, or reserved-bit containers fail cleanly.

use tcgen_engine::{compress_stream, decompress_stream, Backend, Engine, EngineOptions, Error};
use tcgen_spec::{parse, presets, TraceSpec};

fn spec() -> TraceSpec {
    parse(presets::TCGEN_A).expect("preset parses")
}

fn demo_trace(records: usize) -> Vec<u8> {
    let mut raw = vec![9, 8, 7, 6];
    for i in 0..records as u64 {
        raw.extend_from_slice(&(0x40_0000u32 + (i as u32 % 13) * 4).to_le_bytes());
        raw.extend_from_slice(&(0x2000 + i * 8 + (i % 5)).to_le_bytes());
    }
    raw
}

fn options(
    backend: Backend,
    block_records: usize,
    threads: usize,
    model: usize,
) -> EngineOptions {
    EngineOptions {
        backend,
        block_records,
        threads,
        model_threads: model,
        ..EngineOptions::tcgen()
    }
}

/// The tentpole matrix: every backend × (threads, model_threads) ×
/// block_records round-trips losslessly, produces identical bytes at
/// every thread count, and stamps its id into the flags byte.
#[test]
fn every_profile_roundtrips_across_the_thread_matrix() {
    let raw = demo_trace(2_000);
    for backend in Backend::ALL {
        for block_records in [256usize, 701, 0] {
            let mut baseline: Option<Vec<u8>> = None;
            for (threads, model_threads) in [(1usize, 1usize), (1, 3), (3, 1), (4, 2)] {
                let opts = options(backend, block_records, threads, model_threads);
                let engine = Engine::new(spec(), opts);
                let packed = engine.compress(&raw).expect("compress");
                // Byte 5 is the flags byte; bits 3-4 carry the backend id.
                assert_eq!(
                    (packed[5] >> 3) & 0b11,
                    backend.id(),
                    "{backend:?} id missing from flags"
                );
                assert_eq!(engine.decompress(&packed).expect("decompress"), raw);
                match &baseline {
                    None => baseline = Some(packed),
                    Some(b) => assert_eq!(
                        &packed, b,
                        "{backend:?} differs at threads {threads}/{model_threads}, \
                         block_records {block_records}"
                    ),
                }
            }
        }
    }
}

/// Dispatch reads the container, not the local configuration: a
/// decompressor configured for any profile reads containers from every
/// other profile, in memory and streaming.
#[test]
fn any_configuration_decompresses_any_profile() {
    let raw = demo_trace(800);
    for writer in Backend::ALL {
        let opts = options(writer, 300, 2, 1);
        let packed = Engine::new(spec(), opts).compress(&raw).expect("compress");
        let mut streamed = Vec::new();
        compress_stream(&spec(), &opts, &mut raw.as_slice(), &mut streamed)
            .expect("streamed compress");
        assert_eq!(streamed, packed, "{writer:?}: streaming and in-memory containers differ");
        for reader in Backend::ALL {
            let reader_opts = options(reader, 300, 2, 1);
            let engine = Engine::new(spec(), reader_opts);
            assert_eq!(engine.decompress(&packed).expect("decompress"), raw);
            let mut restored = Vec::new();
            decompress_stream(&spec(), &reader_opts, &mut packed.as_slice(), &mut restored)
                .expect("streamed decompress");
            assert_eq!(restored, raw, "{writer:?} container, {reader:?} reader");
        }
    }
}

/// Flipping the recorded backend id makes every segment a foreign
/// container for the dispatched codec — decoding must fail cleanly, not
/// panic or misdecode.
#[test]
fn mismatched_backend_bits_fail_cleanly() {
    let raw = demo_trace(500);
    for backend in Backend::ALL {
        let opts = options(backend, 0, 1, 1);
        let engine = Engine::new(spec(), opts);
        let packed = engine.compress(&raw).expect("compress");
        for wrong in Backend::ALL {
            if wrong == backend {
                continue;
            }
            let mut forged = packed.clone();
            forged[5] = (forged[5] & !0b0001_1000) | (wrong.id() << 3);
            let err = engine.decompress(&forged).expect_err("forged id must fail");
            assert!(matches!(err, Error::Post(_)), "{backend:?} stamped as {wrong:?}: {err:?}");
        }
    }
}

/// The reserved backend id and reserved high flag bits are rejected
/// before any segment is touched.
#[test]
fn reserved_flag_bits_rejected() {
    let raw = demo_trace(200);
    let engine = Engine::new(spec(), EngineOptions::tcgen());
    let packed = engine.compress(&raw).expect("compress");
    for bits in [0b0001_1000u8, 0b0100_0000, 0b1000_0000] {
        let mut forged = packed.clone();
        forged[5] |= bits;
        let err = engine.decompress(&forged).expect_err("reserved bits must fail");
        assert!(matches!(err, Error::Corrupt(_)), "bits {bits:#010b}: {err:?}");
    }
}

/// Forging the checkpoint flag onto a legacy container promises a footer
/// that is not there — the decoder must reject it, not misread the last
/// block's bytes as an index.
#[test]
fn forged_checkpoint_flag_rejected() {
    let raw = demo_trace(200);
    let engine = Engine::new(spec(), EngineOptions::tcgen());
    let mut forged = engine.compress(&raw).expect("compress");
    forged[5] |= 0b0010_0000;
    let err = engine.decompress(&forged).expect_err("forged checkpoint flag must fail");
    assert!(matches!(err, Error::Corrupt(_) | Error::Truncated), "{err:?}");
}

/// Truncating a container at any of a few cut points fails cleanly for
/// every profile.
#[test]
fn truncated_containers_fail_for_every_profile() {
    let raw = demo_trace(400);
    for backend in Backend::ALL {
        let opts = options(backend, 150, 1, 1);
        let engine = Engine::new(spec(), opts);
        let packed = engine.compress(&raw).expect("compress");
        for cut in [3usize, 11, 17, packed.len() / 2, packed.len() - 1] {
            assert!(
                engine.decompress(&packed[..cut]).is_err(),
                "{backend:?} accepted a container cut to {cut} bytes"
            );
        }
    }
}

/// Empty traces (header only) work under every profile.
#[test]
fn empty_trace_roundtrips_under_every_profile() {
    let raw = vec![1, 2, 3, 4];
    for backend in Backend::ALL {
        let engine = Engine::new(spec(), options(backend, 0, 1, 1));
        let packed = engine.compress(&raw).expect("compress");
        assert_eq!(engine.decompress(&packed).expect("decompress"), raw, "{backend:?}");
    }
}

/// The profiles genuinely trade ratio for speed on a predictable trace:
/// max compresses at least as well as balanced, which beats fast's
/// order-0 model on heavily structured code streams.
#[test]
fn profiles_order_by_ratio_on_structured_data() {
    let raw = demo_trace(20_000);
    let size = |backend| {
        Engine::new(spec(), options(backend, 0, 1, 1)).compress(&raw).expect("compress").len()
    };
    let (max, balanced, fast) =
        (size(Backend::Max), size(Backend::Balanced), size(Backend::Fast));
    assert!(max <= balanced, "max {max} should not lose to balanced {balanced}");
    assert!(
        max < raw.len() / 10 && balanced < raw.len() / 4 && fast < raw.len(),
        "all profiles compress: max {max}, balanced {balanced}, fast {fast} of {}",
        raw.len()
    );
}

/// The tuner's candidate scoring follows the selected backend, so tuning
/// under `--profile fast` optimizes what fast actually ships.
#[test]
fn tuner_scoring_respects_the_backend() {
    use std::sync::Arc;
    let spec = spec();
    let candidates = vec![spec.fields[1].clone()];
    let pcs: Arc<Vec<u64>> = Arc::new((0..3_000u64).map(|i| 0x40_0000 + (i % 7) * 4).collect());
    let values: Arc<Vec<u64>> = Arc::new((0..3_000u64).map(|i| 0x9000 + i * 8).collect());
    let mut sizes = Vec::new();
    for backend in Backend::ALL {
        let opts = options(backend, 0, 1, 1);
        let serial =
            tcgen_engine::score_candidates(&candidates, &pcs, &values, &opts).expect("score");
        let threaded = tcgen_engine::score_candidates(
            &candidates,
            &pcs,
            &values,
            &EngineOptions { model_threads: 4, ..opts },
        )
        .expect("score threaded");
        assert_eq!(serial, threaded, "{backend:?} scores depend on thread count");
        sizes.push(serial[0].packed_bytes);
    }
    // Backends produce genuinely different segment encodings, so at
    // least one pair of scores must differ.
    assert!(
        sizes.windows(2).any(|w| w[0] != w[1]),
        "backend never affected tuner scores: {sizes:?}"
    );
}

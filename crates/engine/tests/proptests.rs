//! Property-based tests: compress ∘ decompress is the identity for
//! arbitrary traces under arbitrary valid specifications and options.

use proptest::prelude::*;
use tcgen_engine::streams::{field_offsets, read_value, write_value};
use tcgen_engine::{codec, Engine, EngineOptions};
use tcgen_predictors::{SpecBanks, UpdatePolicy};
use tcgen_spec::TraceSpec;

/// Strategy producing a small but varied valid spec source.
fn spec_source() -> impl Strategy<Value = String> {
    let predictor = prop_oneof![
        (1u32..=4).prop_map(|n| format!("LV[{n}]")),
        (1u32..=3, 1u32..=2).prop_map(|(x, n)| format!("FCM{x}[{n}]")),
        (1u32..=3, 1u32..=2).prop_map(|(x, n)| format!("DFCM{x}[{n}]")),
        (1u32..=3).prop_map(|n| format!("ST[{n}]")),
    ];
    let field_preds = proptest::collection::vec(predictor, 1..4);
    let widths = prop_oneof![Just(8u32), Just(16), Just(32), Just(64)];
    let l2s = prop_oneof![Just(16u64), Just(64), Just(256)];
    (
        proptest::collection::vec((widths, field_preds.clone(), l2s.clone()), 0..3),
        field_preds,
        l2s,
        proptest::bool::ANY,
    )
        .prop_map(|(extra_fields, pc_preds, pc_l2, with_header)| {
            let mut src = String::from("TCgen Trace Specification;\n");
            if with_header {
                src.push_str("32-Bit Header;\n");
            }
            // Field 1 is always the PC field (L1 = 1).
            src.push_str(&format!(
                "32-Bit Field 1 = {{L1 = 1, L2 = {pc_l2}: {}}};\n",
                pc_preds.join(", ")
            ));
            for (i, (bits, preds, l2)) in extra_fields.iter().enumerate() {
                src.push_str(&format!(
                    "{bits}-Bit Field {} = {{L1 = 16, L2 = {l2}: {}}};\n",
                    i + 2,
                    preds.join(", ")
                ));
            }
            src.push_str("PC = Field 1;\n");
            src
        })
}

fn options_strategy() -> impl Strategy<Value = EngineOptions> {
    (
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        1usize..400,
    )
        .prop_map(|(smart, fast, shared, adaptive, minimize, block)| {
            let mut o = EngineOptions::tcgen();
            o.predictor.policy = if smart { UpdatePolicy::Smart } else { UpdatePolicy::Always };
            o.predictor.fast_hash = fast;
            o.predictor.shared_tables = shared;
            o.predictor.adaptive_shift = adaptive;
            o.minimize_types = minimize;
            o.block_records = block;
            o.level = blockzip::Level::FAST;
            o
        })
}

/// A deliberately naive record-major modeling loop, written directly
/// against the single-value `FieldBank` API: one `find_code`/`update`
/// pair per field per record, streams appended in declaration order.
/// This is the straight-line semantics the columnar batch path must
/// reproduce exactly.
fn reference_streams(spec: &TraceSpec, options: &EngineOptions, body: &[u8]) -> Vec<Vec<u8>> {
    let mut banks = SpecBanks::new(spec, options.predictor);
    let offsets = field_offsets(spec);
    let record_len = spec.record_bytes() as usize;
    let pc_index = spec.pc_index();
    let pc_bytes = spec.fields[pc_index].bytes() as usize;
    let mut streams: Vec<Vec<u8>> = vec![Vec::new(); 2 * spec.fields.len()];
    for rec in body.chunks_exact(record_len) {
        let pc = read_value(&rec[offsets[pc_index]..], pc_bytes);
        for (fi, field) in spec.fields.iter().enumerate() {
            let bytes = field.bytes() as usize;
            let width = if options.minimize_types { bytes } else { 8 };
            let value = read_value(&rec[offsets[fi]..], bytes);
            let bank = banks.bank_mut(fi);
            let code = bank.find_code(pc, value);
            streams[2 * fi].push(code);
            if u32::from(code) == bank.n_predictions() {
                write_value(&mut streams[2 * fi + 1], value & bank.width_mask(), width);
            }
            bank.update(pc, value);
        }
    }
    streams
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any byte payload that is a whole number of records roundtrips,
    /// for any spec shape and any option combination.
    #[test]
    fn roundtrip_arbitrary_specs_and_traces(
        src in spec_source(),
        options in options_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..6_000),
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        let engine = Engine::new(spec, options);
        let packed = engine.compress(raw).unwrap();
        prop_assert_eq!(engine.decompress(&packed).unwrap(), raw);
    }

    /// Predictable traces always compress, whatever the options — given a
    /// realistic block size (tiny blocks legitimately drown in framing).
    #[test]
    fn predictable_traces_shrink(mut options in options_strategy()) {
        options.block_records = options.block_records.max(4_096);
        let spec = tcgen_spec::parse(tcgen_spec::presets::TCGEN_A).unwrap();
        let mut raw = vec![0u8; 4];
        for i in 0..8_000u64 {
            raw.extend_from_slice(&(0x40_0000u32 + (i as u32 % 3) * 4).to_le_bytes());
            raw.extend_from_slice(&(0x10_0000 + i * 16).to_le_bytes());
        }
        let engine = Engine::new(spec, options);
        let packed = engine.compress(&raw).unwrap();
        prop_assert!(packed.len() * 4 < raw.len(),
                     "only {} -> {}", raw.len(), packed.len());
    }

    /// The columnar batch path — serial and fanned out — produces
    /// exactly the streams of the naive record-major reference loop,
    /// and replaying those streams recovers the record bytes.
    #[test]
    fn columnar_modeling_matches_record_major_reference(
        src in spec_source(),
        options in options_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..4_000),
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        let body = &raw[header..];
        let reference = reference_streams(&spec, &options, body);
        for model_threads in [1usize, 3] {
            let opts = EngineOptions { model_threads, ..options };
            let streams = codec::raw_streams(&spec, &opts, raw).unwrap();
            prop_assert_eq!(&streams, &reference,
                            "streams diverge at model_threads {}", model_threads);
            let replayed = codec::replay_streams(&spec, &opts, streams).unwrap();
            prop_assert_eq!(&replayed[..], body,
                            "replay diverges at model_threads {}", model_threads);
        }
    }

    /// Truncating a container errors without panicking.
    #[test]
    fn truncation_never_panics(cut_frac in 0.0f64..1.0) {
        let spec = tcgen_spec::parse(tcgen_spec::presets::TCGEN_A).unwrap();
        let engine = Engine::new(spec, EngineOptions::tcgen());
        let mut raw = vec![0u8; 4];
        for i in 0..200u64 {
            raw.extend_from_slice(&0x40_0000u32.to_le_bytes());
            raw.extend_from_slice(&i.to_le_bytes());
        }
        let packed = engine.compress(&raw).unwrap();
        let cut = ((packed.len() - 1) as f64 * cut_frac) as usize;
        let _ = engine.decompress(&packed[..cut]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot → restore → continue is byte-identical for every element
    /// width and predictor kind the spec grammar can express: a
    /// checkpointed container roundtrips through both the sequential and
    /// the span-parallel decode path, and seeking into it via
    /// `extract_range` — which restores a mid-stream snapshot and
    /// replays from there — yields exactly the records a full decode
    /// yields.
    #[test]
    fn checkpointed_containers_roundtrip_and_seek(
        src in spec_source(),
        mut options in options_strategy(),
        interval in 1usize..4,
        payload in proptest::collection::vec(any::<u8>(), 0..4_000),
        frac in 0.0f64..1.0,
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        options.checkpoint_blocks = interval;
        let engine = Engine::new(spec.clone(), options);
        let packed = engine.compress(raw).unwrap();
        prop_assert_eq!(engine.decompress(&packed).unwrap(), raw);
        let parallel = Engine::new(spec.clone(), EngineOptions { threads: 4, ..options });
        prop_assert_eq!(parallel.decompress(&packed).unwrap(), raw);
        let total = ((raw.len() - header) / record) as u64;
        let start = ((total as f64) * frac) as u64;
        let mut cursor = std::io::Cursor::new(&packed[..]);
        let got = tcgen_engine::extract_range(&spec, &options, &mut cursor, start..total, None)
            .unwrap();
        prop_assert_eq!(&got[..], &raw[header + start as usize * record..]);
    }

    /// Pruning at any threshold yields a valid spec whose engine still
    /// roundtrips the trace that produced the usage report.
    #[test]
    fn pruned_specs_always_validate_and_roundtrip(
        src in spec_source(),
        threshold in 0.0f64..1.0,
        payload in proptest::collection::vec(any::<u8>(), 64..3_000),
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        let engine = Engine::new(spec.clone(), EngineOptions::tcgen());
        let (_, usage) = engine.compress_with_usage(raw).unwrap();
        let pruned = usage.pruned_spec(&spec, threshold);
        tcgen_spec::validate(&pruned).expect("pruned specs validate");
        prop_assert!(pruned.prediction_count() <= spec.prediction_count());
        let pruned_engine = Engine::new(pruned, EngineOptions::tcgen());
        let packed = pruned_engine.compress(raw).unwrap();
        prop_assert_eq!(pruned_engine.decompress(&packed).unwrap(), raw);
    }
}

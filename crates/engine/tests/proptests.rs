//! Property-based tests: compress ∘ decompress is the identity for
//! arbitrary traces under arbitrary valid specifications and options.

use proptest::prelude::*;
use tcgen_engine::streams::{field_offsets, read_value, write_value};
use tcgen_engine::{codec, Engine, EngineOptions};
use tcgen_predictors::{SpecBanks, UpdatePolicy};
use tcgen_spec::TraceSpec;

/// Strategy producing a small but varied valid spec source.
fn spec_source() -> impl Strategy<Value = String> {
    let predictor = prop_oneof![
        (1u32..=4).prop_map(|n| format!("LV[{n}]")),
        (1u32..=3, 1u32..=2).prop_map(|(x, n)| format!("FCM{x}[{n}]")),
        (1u32..=3, 1u32..=2).prop_map(|(x, n)| format!("DFCM{x}[{n}]")),
        (1u32..=3).prop_map(|n| format!("ST[{n}]")),
    ];
    let field_preds = proptest::collection::vec(predictor, 1..4);
    let widths = prop_oneof![Just(8u32), Just(16), Just(32), Just(64)];
    let l2s = prop_oneof![Just(16u64), Just(64), Just(256)];
    (
        proptest::collection::vec((widths, field_preds.clone(), l2s.clone()), 0..3),
        field_preds,
        l2s,
        proptest::bool::ANY,
    )
        .prop_map(|(extra_fields, pc_preds, pc_l2, with_header)| {
            let mut src = String::from("TCgen Trace Specification;\n");
            if with_header {
                src.push_str("32-Bit Header;\n");
            }
            // Field 1 is always the PC field (L1 = 1).
            src.push_str(&format!(
                "32-Bit Field 1 = {{L1 = 1, L2 = {pc_l2}: {}}};\n",
                pc_preds.join(", ")
            ));
            for (i, (bits, preds, l2)) in extra_fields.iter().enumerate() {
                src.push_str(&format!(
                    "{bits}-Bit Field {} = {{L1 = 16, L2 = {l2}: {}}};\n",
                    i + 2,
                    preds.join(", ")
                ));
            }
            src.push_str("PC = Field 1;\n");
            src
        })
}

fn options_strategy() -> impl Strategy<Value = EngineOptions> {
    (
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        1usize..400,
    )
        .prop_map(|(smart, fast, shared, adaptive, minimize, block)| {
            let mut o = EngineOptions::tcgen();
            o.predictor.policy = if smart { UpdatePolicy::Smart } else { UpdatePolicy::Always };
            o.predictor.fast_hash = fast;
            o.predictor.shared_tables = shared;
            o.predictor.adaptive_shift = adaptive;
            o.minimize_types = minimize;
            o.block_records = block;
            o.level = blockzip::Level::FAST;
            o
        })
}

/// A deliberately naive record-major modeling loop, written directly
/// against the single-value `FieldBank` API: one `find_code`/`update`
/// pair per field per record, streams appended in declaration order.
/// This is the straight-line semantics the columnar batch path must
/// reproduce exactly.
fn reference_streams(spec: &TraceSpec, options: &EngineOptions, body: &[u8]) -> Vec<Vec<u8>> {
    let mut banks = SpecBanks::new(spec, options.predictor);
    let offsets = field_offsets(spec);
    let record_len = spec.record_bytes() as usize;
    let pc_index = spec.pc_index();
    let pc_bytes = spec.fields[pc_index].bytes() as usize;
    let mut streams: Vec<Vec<u8>> = vec![Vec::new(); 2 * spec.fields.len()];
    for rec in body.chunks_exact(record_len) {
        let pc = read_value(&rec[offsets[pc_index]..], pc_bytes);
        for (fi, field) in spec.fields.iter().enumerate() {
            let bytes = field.bytes() as usize;
            let width = if options.minimize_types { bytes } else { 8 };
            let value = read_value(&rec[offsets[fi]..], bytes);
            let bank = banks.bank_mut(fi);
            let code = bank.find_code(pc, value);
            streams[2 * fi].push(code);
            if u32::from(code) == bank.n_predictions() {
                write_value(&mut streams[2 * fi + 1], value & bank.width_mask(), width);
            }
            bank.update(pc, value);
        }
    }
    streams
}

/// One record-major replay step for one field: reconstruct the value —
/// a prediction slot for hit codes, the next miss-stream entry for the
/// miss code — then update, mirroring `reference_streams` exactly.
fn reference_replay_step(
    banks: &mut SpecBanks,
    fi: usize,
    pc: u64,
    width: usize,
    code: u8,
    miss_bytes: &[u8],
    miss_pos: &mut usize,
) -> u64 {
    let bank = banks.bank_mut(fi);
    let value = if u32::from(code) == bank.n_predictions() {
        let v = read_value(&miss_bytes[*miss_pos..], width) & bank.width_mask();
        *miss_pos += width;
        v
    } else {
        bank.value_for_code(pc, code).expect("hit code resolves to a value")
    };
    bank.update(pc, value);
    value
}

/// A deliberately naive record-major replay loop, the inverse of
/// [`reference_streams`]: per record, decode the PC field first and every
/// other field against it, one `value_for_code`/`update` pair each.
/// Returns the decoded value columns in field order.
fn reference_replay_columns(
    spec: &TraceSpec,
    options: &EngineOptions,
    streams: &[Vec<u8>],
) -> Vec<Vec<u64>> {
    let mut banks = SpecBanks::new(spec, options.predictor);
    let pc_index = spec.pc_index();
    let n_fields = spec.fields.len();
    let n_records = streams[2 * pc_index].len();
    let widths: Vec<usize> = spec
        .fields
        .iter()
        .map(|f| if options.minimize_types { f.bytes() as usize } else { 8 })
        .collect();
    let mut miss_pos = vec![0usize; n_fields];
    let mut cols: Vec<Vec<u64>> = vec![Vec::new(); n_fields];
    for rec in 0..n_records {
        let pc = reference_replay_step(
            &mut banks,
            pc_index,
            0,
            widths[pc_index],
            streams[2 * pc_index][rec],
            &streams[2 * pc_index + 1],
            &mut miss_pos[pc_index],
        );
        cols[pc_index].push(pc);
        for fi in (0..n_fields).filter(|&f| f != pc_index) {
            let value = reference_replay_step(
                &mut banks,
                fi,
                pc,
                widths[fi],
                streams[2 * fi][rec],
                &streams[2 * fi + 1],
                &mut miss_pos[fi],
            );
            cols[fi].push(value);
        }
    }
    cols
}

/// Drives `replay_column` per field the way the engine's columnar stage
/// does — PC column first, then every other field against it — with the
/// pipelined replay schedule forced on or off. Returns the decoded
/// columns and each bank's final snapshot.
fn columnar_replay(
    spec: &TraceSpec,
    options: &EngineOptions,
    streams: &[Vec<u8>],
    plan: bool,
) -> (Vec<Vec<u64>>, Vec<Vec<u8>>) {
    let mut banks = SpecBanks::new(spec, options.predictor);
    let pc_index = spec.pc_index();
    let n_fields = spec.fields.len();
    let misses: Vec<Vec<u64>> = spec
        .fields
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            let width = if options.minimize_types { f.bytes() as usize } else { 8 };
            streams[2 * fi + 1].chunks_exact(width).map(|c| read_value(c, width)).collect()
        })
        .collect();
    let mut pcs = Vec::new();
    banks.bank_mut(pc_index).force_plan(plan);
    banks
        .bank_mut(pc_index)
        .replay_column(None, &streams[2 * pc_index], &misses[pc_index], &mut pcs)
        .expect("pc column replays");
    let mut cols: Vec<Vec<u64>> = vec![Vec::new(); n_fields];
    for fi in (0..n_fields).filter(|&f| f != pc_index) {
        let bank = banks.bank_mut(fi);
        bank.force_plan(plan);
        bank.replay_column(Some(&pcs), &streams[2 * fi], &misses[fi], &mut cols[fi])
            .expect("field column replays");
    }
    cols[pc_index] = pcs;
    let snaps = (0..n_fields).map(|fi| banks.bank(fi).snapshot()).collect();
    (cols, snaps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any byte payload that is a whole number of records roundtrips,
    /// for any spec shape and any option combination.
    #[test]
    fn roundtrip_arbitrary_specs_and_traces(
        src in spec_source(),
        options in options_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..6_000),
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        let engine = Engine::new(spec, options);
        let packed = engine.compress(raw).unwrap();
        prop_assert_eq!(engine.decompress(&packed).unwrap(), raw);
    }

    /// Predictable traces always compress, whatever the options — given a
    /// realistic block size (tiny blocks legitimately drown in framing).
    #[test]
    fn predictable_traces_shrink(mut options in options_strategy()) {
        options.block_records = options.block_records.max(4_096);
        let spec = tcgen_spec::parse(tcgen_spec::presets::TCGEN_A).unwrap();
        let mut raw = vec![0u8; 4];
        for i in 0..8_000u64 {
            raw.extend_from_slice(&(0x40_0000u32 + (i as u32 % 3) * 4).to_le_bytes());
            raw.extend_from_slice(&(0x10_0000 + i * 16).to_le_bytes());
        }
        let engine = Engine::new(spec, options);
        let packed = engine.compress(&raw).unwrap();
        prop_assert!(packed.len() * 4 < raw.len(),
                     "only {} -> {}", raw.len(), packed.len());
    }

    /// The columnar batch path — serial and fanned out — produces
    /// exactly the streams of the naive record-major reference loop,
    /// and replaying those streams recovers the record bytes.
    #[test]
    fn columnar_modeling_matches_record_major_reference(
        src in spec_source(),
        options in options_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..4_000),
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        let body = &raw[header..];
        let reference = reference_streams(&spec, &options, body);
        for model_threads in [1usize, 3] {
            let opts = EngineOptions { model_threads, ..options };
            let streams = codec::raw_streams(&spec, &opts, raw).unwrap();
            prop_assert_eq!(&streams, &reference,
                            "streams diverge at model_threads {}", model_threads);
            let replayed = codec::replay_streams(&spec, &opts, streams).unwrap();
            prop_assert_eq!(&replayed[..], body,
                            "replay diverges at model_threads {}", model_threads);
        }
    }

    /// The pipelined (planned) replay schedule and the straight one-pass
    /// loop both reproduce the record-major reference replay exactly —
    /// decoded columns and final predictor state — for every predictor
    /// kind, element width, and option combination the grammar can
    /// express. The mirror of the modeling property above, for decode.
    #[test]
    fn replay_column_matches_record_major_reference(
        src in spec_source(),
        options in options_strategy(),
        payload in proptest::collection::vec(any::<u8>(), 0..3_000),
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        let streams = reference_streams(&spec, &options, &raw[header..]);
        let reference = reference_replay_columns(&spec, &options, &streams);
        let mut baseline: Option<Vec<Vec<u8>>> = None;
        for plan in [false, true] {
            let (cols, snaps) = columnar_replay(&spec, &options, &streams, plan);
            prop_assert_eq!(&cols, &reference, "columns diverge with plan={}", plan);
            match &baseline {
                None => baseline = Some(snaps),
                Some(s) => prop_assert_eq!(&snaps, s,
                                           "predictor state diverges with plan={}", plan),
            }
        }
    }

    /// Truncating a container errors without panicking.
    #[test]
    fn truncation_never_panics(cut_frac in 0.0f64..1.0) {
        let spec = tcgen_spec::parse(tcgen_spec::presets::TCGEN_A).unwrap();
        let engine = Engine::new(spec, EngineOptions::tcgen());
        let mut raw = vec![0u8; 4];
        for i in 0..200u64 {
            raw.extend_from_slice(&0x40_0000u32.to_le_bytes());
            raw.extend_from_slice(&i.to_le_bytes());
        }
        let packed = engine.compress(&raw).unwrap();
        let cut = ((packed.len() - 1) as f64 * cut_frac) as usize;
        let _ = engine.decompress(&packed[..cut]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot → restore → continue is byte-identical for every element
    /// width and predictor kind the spec grammar can express: a
    /// checkpointed container roundtrips through both the sequential and
    /// the span-parallel decode path, and seeking into it via
    /// `extract_range` — which restores a mid-stream snapshot and
    /// replays from there — yields exactly the records a full decode
    /// yields.
    #[test]
    fn checkpointed_containers_roundtrip_and_seek(
        src in spec_source(),
        mut options in options_strategy(),
        interval in 1usize..4,
        payload in proptest::collection::vec(any::<u8>(), 0..4_000),
        frac in 0.0f64..1.0,
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        options.checkpoint_blocks = interval;
        let engine = Engine::new(spec.clone(), options);
        let packed = engine.compress(raw).unwrap();
        prop_assert_eq!(engine.decompress(&packed).unwrap(), raw);
        let parallel = Engine::new(spec.clone(), EngineOptions { threads: 4, ..options });
        prop_assert_eq!(parallel.decompress(&packed).unwrap(), raw);
        let total = ((raw.len() - header) / record) as u64;
        let start = ((total as f64) * frac) as u64;
        let mut cursor = std::io::Cursor::new(&packed[..]);
        let got = tcgen_engine::extract_range(&spec, &options, &mut cursor, start..total, None)
            .unwrap();
        prop_assert_eq!(&got[..], &raw[header + start as usize * record..]);
    }

    /// Pruning at any threshold yields a valid spec whose engine still
    /// roundtrips the trace that produced the usage report.
    #[test]
    fn pruned_specs_always_validate_and_roundtrip(
        src in spec_source(),
        threshold in 0.0f64..1.0,
        payload in proptest::collection::vec(any::<u8>(), 64..3_000),
    ) {
        let spec = tcgen_spec::parse(&src).expect("generated specs are valid");
        let header = spec.header_bytes() as usize;
        let record = spec.record_bytes() as usize;
        let usable = header + (payload.len().saturating_sub(header) / record) * record;
        let raw = &payload[..usable.min(payload.len())];
        if raw.len() < header {
            return Ok(());
        }
        let engine = Engine::new(spec.clone(), EngineOptions::tcgen());
        let (_, usage) = engine.compress_with_usage(raw).unwrap();
        let pruned = usage.pruned_spec(&spec, threshold);
        tcgen_spec::validate(&pruned).expect("pruned specs validate");
        prop_assert!(pruned.prediction_count() <= spec.prediction_count());
        let pruned_engine = Engine::new(pruned, EngineOptions::tcgen());
        let packed = pruned_engine.compress(raw).unwrap();
        prop_assert_eq!(pruned_engine.decompress(&packed).unwrap(), raw);
    }
}

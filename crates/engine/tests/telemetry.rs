//! Telemetry acceptance tests: attaching a recorder must never change a
//! single container byte at any thread/block configuration, and the
//! report and Chrome-trace sinks must emit valid, complete output.

use tcgen_engine::telemetry::json;
use tcgen_engine::{
    compress_stream_with_telemetry, decompress_stream_with_telemetry, Engine, EngineOptions,
    Recorder,
};
use tcgen_spec::{parse, presets, TraceSpec};

fn spec() -> TraceSpec {
    parse(presets::TCGEN_A).expect("preset parses")
}

fn demo_trace(records: usize) -> Vec<u8> {
    let mut raw = vec![9, 8, 7, 6];
    for i in 0..records as u64 {
        raw.extend_from_slice(&(0x40_0000u32 + (i as u32 % 13) * 4).to_le_bytes());
        raw.extend_from_slice(&(0x2000 + i * 8 + (i % 3)).to_le_bytes());
    }
    raw
}

fn engine(block_records: usize, threads: usize, model_threads: usize) -> Engine {
    Engine::new(
        spec(),
        EngineOptions { block_records, threads, model_threads, ..EngineOptions::tcgen() },
    )
}

/// The tentpole invariant: telemetry is passive. For a matrix of
/// (threads, model_threads, block_records) settings, the container with
/// a recorder attached is byte-identical to the one without, and
/// decompression under observation restores the identical trace.
#[test]
fn recorder_never_changes_container_bytes() {
    let raw = demo_trace(2_000);
    for block_records in [1usize, 64, 701, 0] {
        for (threads, model_threads) in [(1, 1), (1, 3), (3, 1), (4, 2)] {
            let plain = engine(block_records, threads, model_threads);
            let baseline = plain.compress(&raw).expect("compress");

            let rec = Recorder::new();
            let observed = plain.clone().with_telemetry(rec.clone());
            let packed = observed.compress(&raw).expect("observed compress");
            assert_eq!(
                packed, baseline,
                "telemetry changed the container: block_records {block_records}, \
                 threads {threads}, model_threads {model_threads}"
            );
            assert_eq!(
                observed.decompress(&packed).expect("observed decompress"),
                raw,
                "observed roundtrip failed: block_records {block_records}, \
                 threads {threads}, model_threads {model_threads}"
            );
            // And the recorder actually saw the work it watched.
            let report = rec.report();
            assert_eq!(report.counter("compress.bytes_in"), Some(raw.len() as u64));
            assert_eq!(report.counter("compress.bytes_out"), Some(baseline.len() as u64));
            assert_eq!(report.counter("decompress.bytes_out"), Some(raw.len() as u64));
        }
    }
}

/// Streaming paths under the same invariant: streamed-with-recorder
/// output equals streamed-without equals the in-memory container.
#[test]
fn streaming_recorder_matches_in_memory_bytes() {
    let raw = demo_trace(1_500);
    let options = EngineOptions {
        block_records: 256,
        threads: 3,
        model_threads: 2,
        ..EngineOptions::tcgen()
    };
    let baseline = Engine::new(spec(), options).compress(&raw).expect("in-memory compress");

    let rec = Recorder::new();
    let mut packed = Vec::new();
    compress_stream_with_telemetry(
        &spec(),
        &options,
        &mut raw.as_slice(),
        &mut packed,
        Some(&rec),
    )
    .expect("streamed compress");
    assert_eq!(packed, baseline, "streamed container differs under telemetry");

    let mut restored = Vec::new();
    decompress_stream_with_telemetry(
        &spec(),
        &options,
        &mut packed.as_slice(),
        &mut restored,
        Some(&rec),
    )
    .expect("streamed decompress");
    assert_eq!(restored, raw);

    let report = rec.report();
    assert_eq!(report.counter("compress.bytes_out"), Some(baseline.len() as u64));
    assert_eq!(report.counter("decompress.bytes_in"), Some(baseline.len() as u64));
    assert_eq!(report.counter("decompress.bytes_out"), Some(raw.len() as u64));
    assert!(report.stage("io.read").is_some(), "io spans missing: {report}");
}

/// The JSON report parses, carries the schema's sections, and its
/// numbers agree with the run.
#[test]
fn json_report_is_valid_and_complete() {
    let raw = demo_trace(1_200);
    let rec = Recorder::new();
    let observed = engine(128, 3, 2).with_telemetry(rec.clone());
    let packed = observed.compress(&raw).expect("compress");
    observed.decompress(&packed).expect("decompress");

    let text = rec.report().to_json();
    let value = json::parse(&text).expect("report JSON parses");
    assert!(value.get("wall_seconds").and_then(|v| v.as_f64()).unwrap() > 0.0);
    let counters = value.get("counters").expect("counters object");
    assert_eq!(
        counters.get("compress.records").and_then(|v| v.as_u64()),
        Some(1_200),
        "{text}"
    );
    let stages = value.get("stages").and_then(|v| v.as_arr()).expect("stages array");
    let stage_names: Vec<&str> =
        stages.iter().filter_map(|s| s.get("stage").and_then(|v| v.as_str())).collect();
    for expected in
        ["compress", "decompress", "model.chunk", "pack.segment.max", "replay.block"]
    {
        assert!(stage_names.contains(&expected), "stage {expected} missing: {stage_names:?}");
    }
    let pools = value.get("pools").and_then(|v| v.as_arr()).expect("pools array");
    let pack = pools
        .iter()
        .find(|p| p.get("pool").and_then(|v| v.as_str()) == Some("pack"))
        .expect("pack pool report");
    assert_eq!(pack.get("workers").and_then(|v| v.as_u64()), Some(3));
    let submitted = pack.get("submitted").and_then(|v| v.as_u64()).unwrap();
    assert_eq!(pack.get("completed").and_then(|v| v.as_u64()), Some(submitted));
}

/// The Chrome trace parses, and every pool worker shows up as its own
/// named track with `X` duration events, so Perfetto renders one lane
/// per worker.
#[test]
fn chrome_trace_has_one_track_per_worker() {
    let threads = 3;
    let raw = demo_trace(1_000);
    let rec = Recorder::new();
    let observed = engine(128, threads, 1).with_telemetry(rec.clone());
    let packed = observed.compress(&raw).expect("compress");
    observed.decompress(&packed).expect("decompress");

    let value = json::parse(&rec.chrome_trace()).expect("chrome trace parses");
    let events = value.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents");
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|v| v.as_str()))
        .collect();
    assert!(thread_names.contains(&"driver"), "{thread_names:?}");
    for pool in ["pack", "unpack"] {
        for i in 0..threads {
            let track = format!("{pool}-{i}");
            assert!(
                thread_names.iter().any(|n| **n == track),
                "track {track} missing: {thread_names:?}"
            );
        }
    }
    // Duration events carry timestamps and land on registered tracks.
    let durations: Vec<_> =
        events.iter().filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X")).collect();
    assert!(!durations.is_empty());
    for e in &durations {
        assert!(e.get("ts").is_some() && e.get("dur").is_some() && e.get("name").is_some());
    }
}

/// An engine without a recorder records nothing and costs nothing — the
/// `telemetry()` accessor stays `None` and compression works as before.
#[test]
fn engine_without_recorder_stays_unobserved() {
    let raw = demo_trace(500);
    let plain = engine(128, 2, 1);
    assert!(plain.telemetry().is_none());
    let packed = plain.compress(&raw).expect("compress");
    assert_eq!(plain.decompress(&packed).expect("decompress"), raw);
}

//! Width-matrix byte-identity suite.
//!
//! Drives specifications with 1/2/4/8-byte fields (plus a sub-byte-width
//! 12-bit field) through compress → decompress and `raw_streams` →
//! `replay_streams` across every (threads, model_threads, block_records)
//! setting, pinning the containers to golden md5 digests captured from
//! the engine *before* predictor tables became width-specialized. The
//! narrowed table elements must not change a single stream byte — only
//! their in-memory footprint, which the `UsageReport` table-byte
//! accounting checks at the end.

use tcgen_engine::{codec, Engine, EngineOptions};
use tcgen_spec::TraceSpec;

mod md5;

/// A spec dominated by 1-byte fields: both L2 tables collapse to `u8`
/// elements (8× smaller than the seed's `u64` slots).
const SPEC_BYTES: &str = "\
TCgen Trace Specification;
8-Bit Header;
8-Bit Field 1 = {L1 = 1, L2 = 1024: FCM2[2], FCM1[1], LV[2]};
8-Bit Field 2 = {L1 = 64, L2 = 1024: DFCM2[2], FCM1[2], LV[2]};
PC = Field 1;
";

/// One field of every element width, with every predictor family.
const SPEC_MIXED: &str = "\
TCgen Trace Specification;
32-Bit Header;
8-Bit Field 1 = {L1 = 1, L2 = 1024: FCM2[2], LV[1]};
16-Bit Field 2 = {L1 = 64, L2 = 2048: DFCM2[2], LV[2]};
32-Bit Field 3 = {L1 = 64, L2 = 2048: FCM1[2], ST[2], LV[1]};
64-Bit Field 4 = {L1 = 64, L2 = 4096: DFCM3[2], DFCM1[1], FCM1[2], LV[4]};
PC = Field 1;
";

/// The paper's Figure 5 specification (TCgen(A) / VPC3 format).
const SPEC_VPC3: &str = include_str!("../../../specs/vpc3.tcgen");

/// A sub-byte-width field: 12 bits stored in 2 record bytes, so the
/// predictor arithmetic genuinely depends on masking below the element
/// width. The pre-change engine rejected such widths, so this spec has
/// no seed golden; its digest pins the width-specialized engine instead.
const SPEC_SUBBYTE: &str = "\
TCgen Trace Specification;
8-Bit Field 1 = {L1 = 1, L2 = 512: FCM2[2], LV[1]};
12-Bit Field 2 = {L1 = 16, L2 = 1024: DFCM2[2], ST[1], LV[2]};
PC = Field 1;
";

struct Case {
    name: &'static str,
    src: &'static str,
    records: usize,
    /// md5 of the container at block_records = 0 / 4096.
    golden_whole: &'static str,
    golden_blocked: &'static str,
    /// md5 of the concatenated `raw_streams` output.
    golden_streams: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "bytes",
        src: SPEC_BYTES,
        records: 60_000,
        golden_whole: "965b54268916f7ce8151eebbc3ed13f2",
        golden_blocked: "17bc59315ed56a0bdd8098f816075451",
        golden_streams: "9da0d47c024dba2e6673d31c77ac7a5c",
    },
    Case {
        name: "mixed",
        src: SPEC_MIXED,
        records: 40_000,
        golden_whole: "00fa92b9a7482d7755f255911f27e43d",
        golden_blocked: "a08fdd4686d94874f7aa5b7cb710abac",
        golden_streams: "117a640d6a0294d1427d1bb1216243f5",
    },
    Case {
        name: "vpc3",
        src: SPEC_VPC3,
        records: 50_000,
        golden_whole: "f196fa0a4b41167dd3a8b34de4d9be1e",
        golden_blocked: "da53167d2025ea76d825666b0867dd7b",
        golden_streams: "f96068fffbbfff44e19ed8deb766af3d",
    },
];

/// Deterministic trace: per-field mixtures of strides, repeats, and
/// noise so every predictor family both hits and misses.
fn trace_for(spec: &TraceSpec, records: usize) -> Vec<u8> {
    let mut raw = Vec::new();
    for i in 0..spec.header_bytes() {
        raw.push(0xc0 ^ i as u8);
    }
    let mut x = 0x0123_4567_89ab_cdefu64;
    for i in 0..records as u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for (fi, field) in spec.fields.iter().enumerate() {
            let value = match (i + fi as u64) % 5 {
                0 => x >> 17,                           // noise
                1 | 2 => i.wrapping_mul(8 + fi as u64), // stride
                3 => 0xb5b5_b5b5_b5b5_b5b5,             // repeat
                _ => (i / 7).wrapping_mul(4),           // slow stride
            };
            let bytes = field.bytes() as usize;
            let mask = if field.bits == 64 { u64::MAX } else { (1u64 << field.bits) - 1 };
            raw.extend_from_slice(&(value & mask).to_le_bytes()[..bytes]);
        }
    }
    raw
}

fn options(threads: usize, model_threads: usize, block_records: usize) -> EngineOptions {
    EngineOptions { threads, model_threads, block_records, ..EngineOptions::tcgen() }
}

fn thread_matrix() -> Vec<(usize, usize)> {
    vec![(1, 1), (1, 2), (2, 1), (2, 2), (4, 4)]
}

/// Containers must match the seed goldens byte-for-byte at every
/// (threads, model_threads, block_records) setting: width-specialized
/// tables and recycled stream buffers are speed-only.
#[test]
fn containers_match_seed_goldens_across_thread_matrix() {
    for case in CASES {
        let spec = tcgen_spec::parse(case.src).unwrap();
        let raw = trace_for(&spec, case.records);
        for (golden, block_records) in
            [(case.golden_whole, 0usize), (case.golden_blocked, 4096)]
        {
            for (threads, model_threads) in thread_matrix() {
                let engine =
                    Engine::new(spec.clone(), options(threads, model_threads, block_records));
                let packed = engine.compress(&raw).unwrap();
                assert_eq!(
                    md5::hex(&packed),
                    golden,
                    "{} threads={threads} model_threads={model_threads} \
                     block_records={block_records}",
                    case.name
                );
                assert_eq!(
                    engine.decompress(&packed).unwrap(),
                    raw,
                    "{} roundtrip threads={threads} model_threads={model_threads}",
                    case.name
                );
            }
        }
    }
}

/// The un-post-compressed streams — the reference output for generated
/// compressors — must also be untouched, and replay back to the body.
#[test]
fn raw_streams_match_seed_goldens_and_replay() {
    for case in CASES {
        let spec = tcgen_spec::parse(case.src).unwrap();
        let raw = trace_for(&spec, case.records);
        let header_len = spec.header_bytes() as usize;
        for model_threads in [1usize, 4] {
            let opts = options(1, model_threads, 0);
            let streams = codec::raw_streams(&spec, &opts, &raw).unwrap();
            let flat: Vec<u8> = streams.concat();
            assert_eq!(
                md5::hex(&flat),
                case.golden_streams,
                "{} model_threads={model_threads}",
                case.name
            );
            let body = codec::replay_streams(&spec, &opts, streams).unwrap();
            assert_eq!(body, &raw[header_len..], "{} stream replay", case.name);
        }
    }
}

/// Whole-trace container digest for [`SPEC_SUBBYTE`], captured from the
/// width-specialized engine (the seed rejected sub-byte widths, so this
/// golden pins the new behaviour against regressions).
const GOLDEN_SUBBYTE_WHOLE: &str = "bebf8490dac46490a8aa09669ed80dbf";

/// A 12-bit field exercises masking below the element width: the field
/// rides in a `u16` bank whose arithmetic is truncated to 12 bits.
#[test]
fn subbyte_field_roundtrips_with_masked_arithmetic() {
    let spec = tcgen_spec::parse(SPEC_SUBBYTE).unwrap();
    assert_eq!(spec.fields[1].bits, 12);
    assert_eq!(spec.fields[1].bytes(), 2);
    let raw = trace_for(&spec, 30_000);
    let header_len = spec.header_bytes() as usize;
    for (threads, model_threads) in thread_matrix() {
        for block_records in [0usize, 4096] {
            let engine =
                Engine::new(spec.clone(), options(threads, model_threads, block_records));
            let packed = engine.compress(&raw).unwrap();
            if block_records == 0 {
                assert_eq!(
                    md5::hex(&packed),
                    GOLDEN_SUBBYTE_WHOLE,
                    "threads={threads} model_threads={model_threads}"
                );
            }
            assert_eq!(
                engine.decompress(&packed).unwrap(),
                raw,
                "roundtrip threads={threads} model_threads={model_threads} \
                 block_records={block_records}"
            );
        }
    }
    let opts = options(1, 1, 0);
    let streams = codec::raw_streams(&spec, &opts, &raw).unwrap();
    let body = codec::replay_streams(&spec, &opts, streams).unwrap();
    assert_eq!(body, &raw[header_len..]);
}

/// The usage report's table-byte accounting must reflect the selected
/// element widths: minimal elements shrink an 8-bit field's value tables
/// by exactly 8× relative to the wide (`u64`-element) configuration.
#[test]
fn usage_table_bytes_reflect_minimal_elements() {
    let expectations: &[(&str, &[u64])] = &[(SPEC_BYTES, &[8, 8]), (SPEC_MIXED, &[8, 4, 2, 1])];
    for (src, ratios) in expectations {
        let spec = tcgen_spec::parse(src).unwrap();
        let raw = trace_for(&spec, 2_000);
        let minimal = Engine::new(spec.clone(), EngineOptions::tcgen());
        let wide = Engine::new(spec.clone(), EngineOptions::no_type_minimization());
        let (_, min_usage) = minimal.compress_with_usage(&raw).unwrap();
        let (_, wide_usage) = wide.compress_with_usage(&raw).unwrap();
        for ((m, w), &ratio) in min_usage.fields.iter().zip(&wide_usage.fields).zip(*ratios) {
            assert!(m.table_bytes > 0, "field {}", m.field_number);
            assert_eq!(
                m.table_bytes * ratio,
                w.table_bytes,
                "field {} expected a {ratio}x table reduction",
                m.field_number
            );
        }
        assert!(min_usage.to_string().contains("table bytes"));
    }
}

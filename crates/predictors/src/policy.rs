//! Predictor-table update policies.

/// How predictor tables are updated after each record (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UpdatePolicy {
    /// TCgen's policy: update a line only if the incoming value differs
    /// from the line's first entry. One comparison per update, and the
    /// first two entries of every line are guaranteed distinct, which
    /// improves prediction accuracy.
    #[default]
    Smart,
    /// VPC3's policy: always update. Fast (no comparison) but retains
    /// duplicate values in a line.
    Always,
}

impl UpdatePolicy {
    /// Whether a line whose first entry is `first` should be updated with
    /// `incoming`. Generic over the table element so the comparison is
    /// done at the stored width, with no widening on the hot path.
    #[inline]
    pub fn should_update<E: Eq>(self, first: E, incoming: E) -> bool {
        match self {
            UpdatePolicy::Smart => first != incoming,
            UpdatePolicy::Always => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_skips_equal_values() {
        assert!(!UpdatePolicy::Smart.should_update(7, 7));
        assert!(UpdatePolicy::Smart.should_update(7, 8));
    }

    #[test]
    fn always_updates_unconditionally() {
        assert!(UpdatePolicy::Always.should_update(7, 7));
        assert!(UpdatePolicy::Always.should_update(7, 8));
    }

    #[test]
    fn default_is_smart() {
        assert_eq!(UpdatePolicy::default(), UpdatePolicy::Smart);
    }
}

//! Minimal table element types (paper §4): predictor tables store each
//! value with the narrowest unsigned integer that holds the field's
//! declared bit width, so a 1-byte field's second-level tables occupy an
//! eighth of the memory a `u64`-element table would — the storage
//! optimization TCgen bakes into its generated compressors, applied here
//! at bank construction time.
//!
//! Shrinking the element is lossless for every predictor: all stored
//! values (including DFCM strides and ST strides, which live in the same
//! modular domain) are masked to the field width before they enter a
//! table, and wrapping arithmetic modulo `2^E::BITS` followed by a mask
//! to `2^field_bits` equals arithmetic modulo `2^field_bits` whenever
//! `field_bits <= E::BITS`. The emitted streams are therefore
//! byte-identical regardless of the element width.

use std::fmt::Debug;
use std::ops::BitAnd;

/// An unsigned integer usable as a predictor-table element.
///
/// Implemented for `u8`, `u16`, `u32`, and `u64`; the bank picks the
/// narrowest implementor whose [`Self::BITS`] covers the field width.
pub trait TableElement:
    Copy + Eq + Default + Debug + Send + Sync + BitAnd<Output = Self> + 'static
{
    /// Width of the element in bits.
    const BITS: u32;

    /// Truncates `v` to the element width.
    fn from_u64(v: u64) -> Self;

    /// Widens back to the `u64` value domain.
    fn to_u64(self) -> u64;

    /// Addition modulo `2^BITS`.
    fn wrapping_add(self, rhs: Self) -> Self;

    /// Subtraction modulo `2^BITS`.
    fn wrapping_sub(self, rhs: Self) -> Self;

    /// Multiplication modulo `2^BITS`.
    fn wrapping_mul(self, rhs: Self) -> Self;
}

macro_rules! impl_table_element {
    ($($ty:ty),*) => {$(
        impl TableElement for $ty {
            const BITS: u32 = <$ty>::BITS;

            #[inline(always)]
            fn from_u64(v: u64) -> Self {
                v as $ty
            }

            #[inline(always)]
            fn to_u64(self) -> u64 {
                self as u64
            }

            #[inline(always)]
            fn wrapping_add(self, rhs: Self) -> Self {
                <$ty>::wrapping_add(self, rhs)
            }

            #[inline(always)]
            fn wrapping_sub(self, rhs: Self) -> Self {
                <$ty>::wrapping_sub(self, rhs)
            }

            #[inline(always)]
            fn wrapping_mul(self, rhs: Self) -> Self {
                <$ty>::wrapping_mul(self, rhs)
            }
        }
    )*};
}

impl_table_element!(u8, u16, u32, u64);

/// The mask selecting a field's `bits` low bits within element `E`.
///
/// # Panics
///
/// Panics (in debug builds) if `bits` exceeds the element width; the
/// bank's element selection guarantees it never does.
#[inline]
pub fn width_mask<E: TableElement>(bits: u32) -> E {
    debug_assert!(
        bits <= E::BITS,
        "field of {bits} bits cannot live in a {}-bit element",
        E::BITS
    );
    if bits >= 64 {
        E::from_u64(u64::MAX)
    } else {
        E::from_u64((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_roundtrips_masked_values() {
        assert_eq!(u8::from_u64(0x1234).to_u64(), 0x34);
        assert_eq!(u16::from_u64(0xdead_beef).to_u64(), 0xbeef);
        assert_eq!(u32::from_u64(u64::MAX).to_u64(), 0xffff_ffff);
        assert_eq!(u64::from_u64(u64::MAX).to_u64(), u64::MAX);
    }

    #[test]
    fn width_masks_cover_partial_and_full_elements() {
        assert_eq!(width_mask::<u8>(8), 0xff);
        assert_eq!(width_mask::<u16>(12), 0x0fff);
        assert_eq!(width_mask::<u32>(32), 0xffff_ffff);
        assert_eq!(width_mask::<u64>(64), u64::MAX);
    }

    /// The masking argument behind byte-identity: wrapping arithmetic in
    /// a narrow element, masked to the field width, equals the same
    /// arithmetic in u64 masked to the field width.
    #[test]
    fn narrow_arithmetic_matches_masked_u64() {
        let bits = 12u32;
        let m64 = (1u64 << bits) - 1;
        let m16 = width_mask::<u16>(bits);
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let (a, b) = (x >> 7, x >> 31);
            let (ea, eb) = (u16::from_u64(a & m64), u16::from_u64(b & m64));
            assert_eq!((ea.wrapping_add(eb) & m16).to_u64(), a.wrapping_add(b) & m64);
            assert_eq!(
                (ea.wrapping_sub(eb) & m16).to_u64(),
                (a & m64).wrapping_sub(b & m64) & m64
            );
            assert_eq!(
                (ea.wrapping_mul(eb) & m16).to_u64(),
                (a & m64).wrapping_mul(b & m64) & m64
            );
        }
    }
}

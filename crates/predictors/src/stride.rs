//! The stride 2-delta state backing `ST[n]` predictors (an extension
//! beyond the paper's predictor set, after Sazeides & Smith's st2d).
//!
//! Each line holds the most recent stride and the *confirmed* stride; a
//! stride is confirmed once it is observed twice in a row, which keeps
//! one-off jumps (function calls, allocation boundaries) from polluting
//! the prediction.

use crate::element::TableElement;

/// Per-line `(last_stride, confirmed_stride)` state.
///
/// Strides live in the same modular domain as the field's values, so
/// they share the field's minimal element type `E` (see
/// [`crate::element`]): `value - last` masked to the field width fits
/// any element that holds the width.
#[derive(Debug, Clone)]
pub struct StrideTable<E: TableElement = u64> {
    /// Interleaved pairs: `[last_stride, confirmed_stride]` per line.
    values: Vec<E>,
}

impl<E: TableElement> StrideTable<E> {
    /// Allocates a zeroed table with `lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(lines: usize) -> Self {
        assert!(lines > 0, "stride table needs at least one line");
        Self { values: vec![E::default(); lines * 2] }
    }

    /// The confirmed stride of `line`.
    #[inline]
    pub fn confirmed(&self, line: usize) -> E {
        self.values[line * 2 + 1]
    }

    /// Observes a new stride: confirms it if it repeats the previous one.
    #[inline]
    pub fn update(&mut self, line: usize, stride: E) {
        let base = line * 2;
        if self.values[base] == stride {
            self.values[base + 1] = stride;
        }
        self.values[base] = stride;
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<E>()
    }

    /// The interleaved `[last_stride, confirmed_stride]` pairs — the
    /// serialization surface for checkpoint snapshots.
    pub fn values(&self) -> &[E] {
        &self.values
    }

    /// Mutable view of the interleaved pairs, for snapshot restore.
    pub fn values_mut(&mut self) -> &mut [E] {
        &mut self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_confirms_on_second_sighting() {
        let mut t = StrideTable::<u64>::new(1);
        assert_eq!(t.confirmed(0), 0);
        t.update(0, 8);
        assert_eq!(t.confirmed(0), 0, "single sighting is not confirmed");
        t.update(0, 8);
        assert_eq!(t.confirmed(0), 8);
    }

    #[test]
    fn one_off_jump_does_not_disturb_confirmed_stride() {
        let mut t = StrideTable::<u64>::new(1);
        t.update(0, 8);
        t.update(0, 8);
        t.update(0, 4096); // a call or allocation jump
        assert_eq!(t.confirmed(0), 8, "jump must not be confirmed");
        t.update(0, 8);
        assert_eq!(t.confirmed(0), 8, "back in stride, still 8");
    }

    #[test]
    fn lines_are_independent() {
        let mut t = StrideTable::<u16>::new(2);
        t.update(0, 8);
        t.update(0, 8);
        t.update(1, 16);
        t.update(1, 16);
        assert_eq!(t.confirmed(0), 8);
        assert_eq!(t.confirmed(1), 16);
    }
}

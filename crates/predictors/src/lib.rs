//! # tcgen-predictors
//!
//! The value predictors TCgen can emit (paper §3) as reusable runtime
//! components:
//!
//! * **LV\[n\]** — last-value predictor: the `n` most recently seen
//!   values of the selected line.
//! * **FCMx\[n\]** — finite context method: the `n` values that followed
//!   the last occurrences of the same `x`-value context, found through a
//!   select-fold-shift-xor hash into a second-level table.
//! * **DFCMx\[n\]** — differential FCM: like FCM but over strides between
//!   consecutive values; the predicted stride is added to the last value,
//!   so it can predict values never seen before.
//!
//! [`FieldBank`] composes the predictors a specification selects for one
//! field with the paper's optimizations — shared last-value tables,
//! shared first-level histories, incremental hashing, the smart update
//! policy — each individually toggleable via [`PredictorOptions`] to
//! reproduce the Table 2 ablation.
//!
//! Table storage is width-specialized (paper §4): every table is generic
//! over a [`TableElement`] and [`FieldBank`] instantiates it with the
//! narrowest unsigned type covering the field's bit width, so a 1-byte
//! field's second-level tables are 8× smaller than `u64`-element tables
//! while emitting byte-identical streams (see [`element`]).
//!
//! ```
//! use tcgen_predictors::{FieldBank, PredictorOptions};
//!
//! let spec = tcgen_spec::parse(
//!     "TCgen Trace Specification;\n64-Bit Field 1 = {: LV[2]};\nPC = Field 1;",
//! )?;
//! let mut bank = FieldBank::new(&spec.fields[0], PredictorOptions::default());
//! bank.update(0, 42);
//! let mut predictions = Vec::new();
//! bank.predict_into(0, &mut predictions);
//! assert_eq!(predictions, vec![42, 0]);
//! # Ok::<(), tcgen_spec::SpecError>(())
//! ```

pub mod bank;
pub mod candidates;
pub mod element;
pub mod fcm;
pub mod hash;
pub mod occupancy;
pub mod policy;
pub mod stride;
pub mod table;

pub use bank::{
    FieldBank, PredictorOptions, ReplayError, SnapshotError, SpecBanks, TypedBank,
    SNAPSHOT_VERSION,
};
pub use candidates::{predictor_candidates, CandidateSpace};
pub use element::TableElement;
pub use fcm::ContextBank;
pub use hash::{fold, HashSpec};
pub use occupancy::{OccTable, Occupancy, TableOccupancy};
pub use policy::UpdatePolicy;
pub use stride::StrideTable;
pub use table::ValueTable;

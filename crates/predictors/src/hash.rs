//! The select-fold-shift-xor hash family used by FCM and DFCM predictors
//! (Sazeides & Smith), with TCgen's enhancements: field-size-aware
//! folding, an adaptive shift amount, and incremental multi-order
//! computation in which the order-`i` index falls out as an intermediate
//! of the order-`x` computation (paper §5.2–5.3).

/// XOR-folds `value` down to `bits` bits (`1..=64`).
///
/// Folding repeatedly XORs the high part into the low part so that every
/// input bit influences the result, which matters for 64-bit fields whose
/// entropy lives in the high bytes.
#[inline]
pub fn fold(value: u64, bits: u32) -> u64 {
    debug_assert!((1..=64).contains(&bits));
    if bits >= 64 {
        return value;
    }
    let mask = (1u64 << bits) - 1;
    let mut v = value;
    let mut acc = 0u64;
    // Fixed trip count covering all 64 input bits: folding the zeros a
    // short value leaves behind is a no-op, while a data-dependent exit
    // would mispredict on every value-magnitude change in the hot
    // modeling loop.
    for _ in 0..64u32.div_ceil(bits) {
        acc ^= v & mask;
        v >>= bits;
    }
    acc
}

/// Precomputed hashing parameters for one (D)FCM bank of a field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashSpec {
    /// Per-order index masks; `masks[i]` covers the order-`i+1` table of
    /// `l2 << i` lines.
    pub masks: Vec<u64>,
    /// Left-shift applied to the running hash per new value.
    pub shift: u32,
    /// Width to which incoming values are folded.
    pub fold_bits: u32,
}

impl HashSpec {
    /// Builds hashing parameters for a bank with `max_order` orders over
    /// a field of `field_bits` bits and a base second-level size of `l2`
    /// lines.
    ///
    /// With `adaptive` set (TCgen enhancement #3) the shift adapts to the
    /// field width and table size so that small fields still reach the
    /// whole table; without it (the VPC3 behaviour) a fixed shift of 2 is
    /// used.
    ///
    /// # Panics
    ///
    /// Panics if `max_order` is 0 or `l2` is not a power of two.
    pub fn new(field_bits: u32, l2: u64, max_order: u32, adaptive: bool) -> Self {
        assert!(max_order >= 1, "a context bank needs at least order 1");
        assert!(l2.is_power_of_two(), "L2 must be a power of two");
        let masks: Vec<u64> = (0..max_order).map(|i| (l2 << i) - 1).collect();
        let max_index_bits = 64 - masks[masks.len() - 1].leading_zeros();
        // Fold incoming values to the widest index so no entropy beyond
        // the table size is kept, but small fields keep all their bits.
        let fold_bits = field_bits.min(max_index_bits.max(1));
        let shift = if adaptive {
            // Spread the orders' contributions across the index: each of
            // the `max_order` context values should land on fresh bits,
            // but never shift a small field's few bits straight out.
            let spread = max_index_bits.div_ceil(max_order);
            spread.clamp(1, fold_bits.max(1))
        } else {
            2
        };
        Self { masks, shift, fold_bits }
    }

    /// Number of orders this spec covers.
    pub fn max_order(&self) -> u32 {
        self.masks.len() as u32
    }

    /// Folds a raw field value for hashing.
    #[inline]
    pub fn fold_value(&self, value: u64) -> u64 {
        fold(value, self.fold_bits)
    }

    /// Incrementally advances the per-line running hashes with the folded
    /// value `f`. `hashes[i]` covers the last `i+1` values; the update
    /// costs exactly `max_order` operations (paper §5.2).
    #[inline]
    pub fn advance(&self, hashes: &mut [u32], f: u64) {
        debug_assert_eq!(hashes.len(), self.masks.len());
        for i in (1..hashes.len()).rev() {
            let lower = u64::from(hashes[i - 1]);
            hashes[i] = (((lower << self.shift) ^ f) & self.masks[i]) as u32;
        }
        hashes[0] = (f & self.masks[0]) as u32;
    }

    /// Recomputes all hashes from scratch from the most-recent-first
    /// history of folded values. Produces exactly the same result as
    /// repeated [`Self::advance`] calls; exists for the "no fast hash
    /// function" ablation of Table 2.
    pub fn from_scratch(&self, history: &[u64]) -> Vec<u32> {
        let order = self.masks.len();
        debug_assert_eq!(history.len(), order);
        let mut hashes = vec![0u32; order];
        // hash for order o combines history[o-1] (oldest) .. history[0]
        // (newest), masking intermediates exactly like the fast path.
        for (o, slot) in hashes.iter_mut().enumerate() {
            let mut h = 0u64;
            for i in (0..=o).rev() {
                let step = o - i; // 0-based position in the chain
                h = if step == 0 {
                    history[i] & self.masks[0]
                } else {
                    ((h << self.shift) ^ history[i]) & self.masks[step]
                };
            }
            *slot = h as u32;
        }
        hashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_identity_for_wide_targets() {
        assert_eq!(fold(0x1234_5678_9abc_def0, 64), 0x1234_5678_9abc_def0);
    }

    #[test]
    fn fold_mixes_high_bits() {
        // Two values differing only in high bits must fold differently.
        let a = fold(0x0100_0000_0000_0042, 16);
        let b = fold(0x0200_0000_0000_0042, 16);
        assert_ne!(a, b);
        assert!(a < (1 << 16) && b < (1 << 16));
    }

    #[test]
    fn fold_of_small_value_is_value() {
        assert_eq!(fold(0x3f, 8), 0x3f);
    }

    #[test]
    fn masks_scale_with_order() {
        let spec = HashSpec::new(64, 131_072, 3, true);
        assert_eq!(spec.masks, vec![131_071, 262_143, 524_287]);
    }

    #[test]
    fn adaptive_shift_respects_small_fields() {
        let small = HashSpec::new(8, 65_536, 3, true);
        assert!(small.shift >= 1 && small.shift <= 8, "shift {}", small.shift);
        let large = HashSpec::new(64, 131_072, 3, true);
        assert!(large.shift > 2, "adaptive shift for wide tables, got {}", large.shift);
    }

    #[test]
    fn non_adaptive_shift_is_fixed() {
        assert_eq!(HashSpec::new(64, 131_072, 3, false).shift, 2);
        assert_eq!(HashSpec::new(8, 256, 2, false).shift, 2);
    }

    #[test]
    fn incremental_equals_scratch() {
        let spec = HashSpec::new(64, 4096, 4, true);
        let values = [3u64, 1441, 99, 1 << 40, 77, 3, 3, 123_456_789, 42];
        let mut fast = vec![0u32; 4];
        let mut history = vec![0u64; 4]; // most recent first
        for &v in &values {
            let f = spec.fold_value(v);
            spec.advance(&mut fast, f);
            history.rotate_right(1);
            history[0] = f;
            assert_eq!(spec.from_scratch(&history), fast);
        }
    }

    #[test]
    fn order_one_hash_is_fold_of_last_value() {
        let spec = HashSpec::new(32, 1024, 1, true);
        let mut h = vec![0u32; 1];
        spec.advance(&mut h, spec.fold_value(0xdead_beef));
        assert_eq!(u64::from(h[0]), spec.fold_value(0xdead_beef) & spec.masks[0]);
    }

    #[test]
    fn different_contexts_hash_differently() {
        // Sanity: two distinct 3-value contexts rarely collide.
        let spec = HashSpec::new(64, 65_536, 3, true);
        let mut a = vec![0u32; 3];
        let mut b = vec![0u32; 3];
        for v in [1u64, 2, 3] {
            spec.advance(&mut a, spec.fold_value(v));
        }
        for v in [1u64, 2, 4] {
            spec.advance(&mut b, spec.fold_value(v));
        }
        assert_ne!(a[2], b[2]);
    }

    #[test]
    #[should_panic(expected = "at least order 1")]
    fn zero_order_panics() {
        let _ = HashSpec::new(32, 1024, 0, true);
    }
}

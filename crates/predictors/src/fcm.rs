//! Context banks: the shared machinery behind FCM and DFCM predictors.
//!
//! One bank serves every (D)FCM predictor of a field in one family: a
//! single first-level structure carries the running hashes for all orders
//! up to the highest selected one (paper: "only the first-level table for
//! the highest order predictor is generated and the lower-order
//! predictors utilize whatever fraction of that table they need"), and
//! each selected predictor owns a second-level value table of
//! `L2 * 2^(order-1)` lines.
//!
//! The second-level tables store the field's minimal element type `E`
//! (paper §4); the first-level hash state is width-independent (`u32`
//! running hashes / `u64` folded history), so only the value storage
//! narrows. Hash folding sees `value.to_u64()`, which is numerically the
//! value that was stored, so indices are identical at every width.

use crate::element::TableElement;
use crate::hash::HashSpec;
use crate::occupancy::Occupancy;
use crate::policy::UpdatePolicy;
use crate::table::ValueTable;

/// A second-level table belonging to one (D)FCM predictor.
#[derive(Debug, Clone)]
pub struct OrderTable<E: TableElement = u64> {
    /// Context order `x` of the owning predictor.
    pub order: u32,
    /// Value storage: `l2 << (order-1)` lines of `height` values.
    pub table: ValueTable<E>,
}

/// First-level state plus the second-level tables of one (D)FCM family.
#[derive(Debug, Clone)]
pub struct ContextBank<E: TableElement = u64> {
    spec: HashSpec,
    max_order: usize,
    /// Running hashes per L1 line (fast mode): `l1 × max_order`.
    hashes: Vec<u32>,
    /// Folded-value history per L1 line (scratch mode): `l1 × max_order`,
    /// most recent first.
    history: Vec<u64>,
    fast_hash: bool,
    tables: Vec<OrderTable<E>>,
    /// Lines-ever-written tracking, one map per second-level table.
    occ: Vec<Occupancy>,
}

impl<E: TableElement> ContextBank<E> {
    /// Builds a bank for predictors with the given `(order, height)`
    /// selections over a field of `field_bits` bits.
    ///
    /// `hash_order` fixes the depth of the first-level hash state and the
    /// hash parameters; it must be at least the largest selected order.
    /// Passing the *family's* maximum order (even for a bank holding only
    /// a lower-order predictor, as in the unshared-tables ablation) keeps
    /// the hash function — and therefore every table index — identical to
    /// the shared configuration's.
    ///
    /// # Panics
    ///
    /// Panics if `orders` is empty, `hash_order` is smaller than the
    /// largest order, or `l1`/`l2` are not powers of two.
    pub fn new(
        field_bits: u32,
        l1: u64,
        l2: u64,
        orders: &[(u32, u32)],
        hash_order: u32,
        adaptive_shift: bool,
        fast_hash: bool,
    ) -> Self {
        assert!(!orders.is_empty(), "a context bank needs at least one predictor");
        assert!(l1.is_power_of_two(), "L1 must be a power of two");
        let selected_max = orders.iter().map(|&(o, _)| o).max().expect("nonempty");
        assert!(hash_order >= selected_max, "hash_order below the largest selected order");
        let max_order = hash_order as usize;
        let spec = HashSpec::new(field_bits, l2, max_order as u32, adaptive_shift);
        let tables: Vec<OrderTable<E>> = orders
            .iter()
            .map(|&(order, height)| OrderTable {
                order,
                table: ValueTable::new((l2 << (order - 1)) as usize, height as usize),
            })
            .collect();
        let occ = orders
            .iter()
            .map(|&(order, _)| Occupancy::new((l2 << (order - 1)) as usize))
            .collect();
        Self {
            spec,
            max_order,
            hashes: if fast_hash { vec![0; l1 as usize * max_order] } else { Vec::new() },
            history: if fast_hash { Vec::new() } else { vec![0; l1 as usize * max_order] },
            fast_hash,
            tables,
            occ,
        }
    }

    /// Number of second-level tables (= predictors) in this bank.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Values per line of table `t`.
    pub fn table_height(&self, t: usize) -> usize {
        self.tables[t].table.height()
    }

    /// The current index into table `t` for L1 line `line`.
    #[inline]
    fn index(&self, line: usize, t: usize, scratch: &[u32]) -> usize {
        let order = self.tables[t].order as usize;
        if self.fast_hash {
            self.hashes[line * self.max_order + (order - 1)] as usize
        } else {
            scratch[order - 1] as usize
        }
    }

    /// Recomputes hashes from the history (scratch mode only).
    fn scratch_hashes(&self, line: usize) -> Vec<u32> {
        let start = line * self.max_order;
        self.spec.from_scratch(&self.history[start..start + self.max_order])
    }

    /// One entry of table `t`'s current line for `line` (lazy access for
    /// decompression, which needs a single slot rather than all of them).
    pub fn value_at(&self, line: usize, t: usize, entry: usize) -> E {
        let scratch = if self.fast_hash { Vec::new() } else { self.scratch_hashes(line) };
        let idx = self.index(line, t, &scratch);
        self.tables[t].table.line(idx)[entry]
    }

    /// Index of the first entry of table `t`'s current line equal to
    /// `value`, or `None`. The batch-modeling analogue of probing
    /// [`Self::value_at`] slot by slot: the hash is resolved once per
    /// probe rather than once per slot.
    #[inline]
    pub fn find_value(&self, line: usize, t: usize, value: E) -> Option<usize> {
        let scratch = if self.fast_hash { Vec::new() } else { self.scratch_hashes(line) };
        let idx = self.index(line, t, &scratch);
        self.tables[t].table.line(idx).iter().position(|&v| v == value)
    }

    /// Appends the predictions of table `t` for `line` to `out`, widened
    /// to the `u64` value domain.
    pub fn predict_into(&self, line: usize, t: usize, out: &mut Vec<u64>) {
        let scratch = if self.fast_hash { Vec::new() } else { self.scratch_hashes(line) };
        let idx = self.index(line, t, &scratch);
        out.extend(self.tables[t].table.line(idx).iter().map(|v| v.to_u64()));
    }

    /// Appends the predictions of every table, in table order, to `out`.
    pub fn predict_all_into(&self, line: usize, out: &mut Vec<u64>) {
        let scratch = if self.fast_hash { Vec::new() } else { self.scratch_hashes(line) };
        for t in 0..self.tables.len() {
            let idx = self.index(line, t, &scratch);
            out.extend(self.tables[t].table.line(idx).iter().map(|v| v.to_u64()));
        }
    }

    /// Resolves this record's table indices *before* the hash state
    /// advances: pushes one index per second-level table (in table
    /// order) onto `idx_out`, prefetches each indexed line, then
    /// advances the first-level hashes with the folded `input` — the
    /// exact index/advance schedule of [`Self::update`], split out so
    /// the columnar kernel can plan a whole batch of records and probe
    /// the tables later with their lines already in cache.
    ///
    /// A record planned this way must be finished with
    /// [`Self::update_tables_at`], never [`Self::update`], or the hashes
    /// would advance twice.
    #[inline]
    pub fn plan_record(&mut self, line: usize, input: u64, idx_out: &mut Vec<u32>) {
        let f = self.spec.fold_value(input);
        let start = line * self.max_order;
        if self.fast_hash {
            let hashes = &mut self.hashes[start..start + self.max_order];
            for t in &self.tables {
                let idx = hashes[t.order as usize - 1];
                t.table.prefetch(idx as usize);
                idx_out.push(idx);
            }
            self.spec.advance(hashes, f);
        } else {
            let scratch = self.scratch_hashes(line);
            for t in &self.tables {
                let idx = scratch[t.order as usize - 1];
                t.table.prefetch(idx as usize);
                idx_out.push(idx);
            }
            let hist = &mut self.history[start..start + self.max_order];
            hist.rotate_right(1);
            hist[0] = f;
        }
    }

    /// The resolve-and-prefetch half of [`Self::plan_record`]: pushes one
    /// index per second-level table onto `idx_out` and prefetches each
    /// indexed line, but leaves the hash state where it is. Replay uses
    /// this to look one record ahead — the *next* record's indices are
    /// known as soon as this record's hashes have advanced, before its
    /// value has been decoded — and pairs it with
    /// [`Self::advance_hashes`] once the value is known.
    #[inline]
    pub fn resolve_record(&self, line: usize, idx_out: &mut Vec<u32>) {
        if self.fast_hash {
            let start = line * self.max_order;
            let hashes = &self.hashes[start..start + self.max_order];
            for t in &self.tables {
                let idx = hashes[t.order as usize - 1];
                t.table.prefetch(idx as usize);
                idx_out.push(idx);
            }
        } else {
            let scratch = self.scratch_hashes(line);
            for t in &self.tables {
                let idx = scratch[t.order as usize - 1];
                t.table.prefetch(idx as usize);
                idx_out.push(idx);
            }
        }
    }

    /// The hash-advance half of [`Self::plan_record`]: folds `input` into
    /// the first-level state of `line`. Must follow a
    /// [`Self::resolve_record`] for the same line, and the record must be
    /// finished with [`Self::update_tables_at`] — never [`Self::update`],
    /// which would advance the hashes a second time.
    #[inline]
    pub fn advance_hashes(&mut self, line: usize, input: u64) {
        let f = self.spec.fold_value(input);
        let start = line * self.max_order;
        if self.fast_hash {
            self.spec.advance(&mut self.hashes[start..start + self.max_order], f);
        } else {
            let hist = &mut self.history[start..start + self.max_order];
            hist.rotate_right(1);
            hist[0] = f;
        }
    }

    /// [`Self::find_value`] with the hash already resolved to `idx` by
    /// [`Self::plan_record`].
    #[inline]
    pub fn find_value_at(&self, t: usize, idx: usize, value: E) -> Option<usize> {
        self.tables[t].table.line(idx).iter().position(|&v| v == value)
    }

    /// [`Self::value_at`] with the hash already resolved to `idx` by
    /// [`Self::resolve_record`] or [`Self::plan_record`].
    #[inline]
    pub fn value_at_index(&self, t: usize, idx: usize, entry: usize) -> E {
        self.tables[t].table.line(idx)[entry]
    }

    /// The table-update half of [`Self::update`], at indices resolved by
    /// an earlier [`Self::plan_record`] call (one per table, in table
    /// order). The hash state is not touched — `plan_record` already
    /// advanced it.
    #[inline]
    pub fn update_tables_at(&mut self, idxs: &[u32], value: E, policy: UpdatePolicy) {
        for (t, &idx) in idxs.iter().enumerate() {
            let idx = idx as usize;
            self.occ[t].mark(idx);
            self.tables[t].table.update(idx, value, policy);
        }
    }

    /// Updates every second-level table with `value` at the current
    /// indices, then advances the first-level hashes with `value`.
    pub fn update(&mut self, line: usize, value: E, policy: UpdatePolicy) {
        let scratch = if self.fast_hash { Vec::new() } else { self.scratch_hashes(line) };
        for t in 0..self.tables.len() {
            let idx = self.index(line, t, &scratch);
            self.occ[t].mark(idx);
            self.tables[t].table.update(idx, value, policy);
        }
        let f = self.spec.fold_value(value.to_u64());
        if self.fast_hash {
            let start = line * self.max_order;
            self.spec.advance(&mut self.hashes[start..start + self.max_order], f);
        } else {
            let start = line * self.max_order;
            let hist = &mut self.history[start..start + self.max_order];
            hist.rotate_right(1);
            hist[0] = f;
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.hashes.len() * 4
            + self.history.len() * 8
            + self.tables.iter().map(|t| t.table.memory_bytes()).sum::<usize>()
    }

    /// Memory footprint of the second-level value tables alone.
    pub fn table_memory_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.table.memory_bytes()).sum()
    }

    /// The first-level hash state as `(hashes, history)`; exactly one of
    /// the slices is non-empty, depending on the fast-hash mode. This is
    /// the serialization surface for checkpoint snapshots.
    pub fn hash_state(&self) -> (&[u32], &[u64]) {
        (&self.hashes, &self.history)
    }

    /// Mutable view of the first-level hash state, for snapshot restore.
    pub fn hash_state_mut(&mut self) -> (&mut [u32], &mut [u64]) {
        (&mut self.hashes, &mut self.history)
    }

    /// The second-level tables, in table order.
    pub fn tables(&self) -> &[OrderTable<E>] {
        &self.tables
    }

    /// Mutable view of the second-level tables, for snapshot restore.
    pub fn tables_mut(&mut self) -> &mut [OrderTable<E>] {
        &mut self.tables
    }

    /// Whether every stored fast-mode hash indexes within its table — a
    /// restore-time guard: a forged snapshot with out-of-range hashes
    /// would otherwise panic on the first probe. Scratch-mode banks
    /// recompute indices from the history, which lands in range by
    /// construction, so they always validate.
    pub fn hash_indices_valid(&self) -> bool {
        if !self.fast_hash {
            return true;
        }
        let lines = self.hashes.len() / self.max_order;
        (0..lines).all(|line| {
            self.tables.iter().all(|t| {
                let idx = self.hashes[line * self.max_order + (t.order as usize - 1)];
                (idx as usize) < t.table.lines()
            })
        })
    }

    /// Depth of the first-level hash state (hash words per L1 line).
    pub fn max_order(&self) -> usize {
        self.max_order
    }

    /// The lines-ever-written map of second-level table `t`.
    pub fn occupancy(&self, t: usize) -> &Occupancy {
        &self.occ[t]
    }

    /// Mutable view of table `t`'s occupancy map, for snapshot restore.
    pub fn occupancy_mut(&mut self, t: usize) -> &mut Occupancy {
        &mut self.occ[t]
    }

    /// Per-table occupancy: `(order, lines_written, lines_total)` in
    /// table order.
    pub fn occupancies(&self) -> Vec<(u32, u64, u64)> {
        self.tables
            .iter()
            .zip(&self.occ)
            .map(|(t, occ)| (t.order, occ.written(), occ.lines()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(bank: &mut ContextBank, values: &[u64]) -> Vec<Vec<u64>> {
        let mut out = Vec::new();
        for &v in values {
            let mut preds = Vec::new();
            bank.predict_all_into(0, &mut preds);
            out.push(preds);
            bank.update(0, v, UpdatePolicy::Smart);
        }
        out
    }

    #[test]
    fn fcm_learns_repeating_sequences() {
        // Order-2 FCM must predict a repeating A,B,C,A,B,C... pattern
        // once it has seen each context once.
        let mut bank = ContextBank::<u64>::new(64, 1, 256, &[(2, 1)], 2, true, true);
        let pattern: Vec<u64> = [11u64, 22, 33].iter().cycle().take(30).copied().collect();
        let preds = drive(&mut bank, &pattern);
        // After the first full cycle plus warmup, predictions are exact.
        for (i, p) in preds.iter().enumerate().skip(6) {
            assert_eq!(p[0], pattern[i], "mispredicted at step {i}");
        }
    }

    #[test]
    fn higher_orders_disambiguate_contexts() {
        // The sequence 1,2,9, 3,2,7, 1,2,9, 3,2,7 ... is ambiguous for an
        // order-1 FCM (context "2" precedes both 9 and 7) but exact for
        // order 2.
        let seq: Vec<u64> = [1u64, 2, 9, 3, 2, 7].iter().cycle().take(60).copied().collect();
        let mut o1 = ContextBank::<u64>::new(64, 1, 1024, &[(1, 1)], 1, true, true);
        let mut o2 = ContextBank::<u64>::new(64, 1, 1024, &[(2, 1)], 2, true, true);
        let p1 = drive(&mut o1, &seq);
        let p2 = drive(&mut o2, &seq);
        let hits = |ps: &[Vec<u64>]| {
            ps.iter().enumerate().skip(12).filter(|(i, p)| p[0] == seq[*i]).count()
        };
        assert!(hits(&p2) > hits(&p1), "order 2 ({}) <= order 1 ({})", hits(&p2), hits(&p1));
        assert_eq!(hits(&p2), 60 - 12, "order 2 should be exact after warmup");
    }

    #[test]
    fn scratch_mode_matches_fast_mode() {
        let values: Vec<u64> = (0..200).map(|i| (i * i * 2654435761u64) >> 7).collect();
        let mut fast = ContextBank::<u64>::new(64, 4, 512, &[(1, 2), (3, 2)], 3, true, true);
        let mut slow = ContextBank::<u64>::new(64, 4, 512, &[(1, 2), (3, 2)], 3, true, false);
        for (i, &v) in values.iter().enumerate() {
            let line = i % 4;
            let mut pf = Vec::new();
            let mut ps = Vec::new();
            fast.predict_all_into(line, &mut pf);
            slow.predict_all_into(line, &mut ps);
            assert_eq!(pf, ps, "divergence at step {i}");
            fast.update(line, v, UpdatePolicy::Smart);
            slow.update(line, v, UpdatePolicy::Smart);
        }
    }

    #[test]
    fn per_line_contexts_are_independent() {
        let mut bank = ContextBank::<u64>::new(64, 2, 256, &[(1, 1)], 1, true, true);
        // Line 0 sees 5,5,5... line 1 sees 9,9,9...
        for _ in 0..10 {
            bank.update(0, 5, UpdatePolicy::Smart);
            bank.update(1, 9, UpdatePolicy::Smart);
        }
        let mut p0 = Vec::new();
        let mut p1 = Vec::new();
        bank.predict_into(0, 0, &mut p0);
        bank.predict_into(1, 0, &mut p1);
        assert_eq!(p0, vec![5]);
        assert_eq!(p1, vec![9]);
    }

    /// A narrow-element bank must walk exactly the same table indices as
    /// the u64 bank: the hash folds the numeric value, which masking to
    /// the field width already fixed.
    #[test]
    fn narrow_bank_matches_wide_bank_at_field_width() {
        let mut narrow = ContextBank::<u8>::new(8, 2, 512, &[(1, 2), (2, 1)], 2, true, true);
        let mut wide = ContextBank::<u64>::new(8, 2, 512, &[(1, 2), (2, 1)], 2, true, true);
        let mut x = 0xfeed_beefu64;
        for i in 0..500usize {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (x >> 23) & 0xff;
            let line = i % 2;
            let mut pn = Vec::new();
            let mut pw = Vec::new();
            narrow.predict_all_into(line, &mut pn);
            wide.predict_all_into(line, &mut pw);
            assert_eq!(pn, pw, "divergence at step {i}");
            assert_eq!(narrow.find_value(line, 0, v as u8), wide.find_value(line, 0, v));
            narrow.update(line, v as u8, UpdatePolicy::Smart);
            wide.update(line, v, UpdatePolicy::Smart);
        }
        assert!(narrow.table_memory_bytes() * 8 == wide.table_memory_bytes());
    }

    #[test]
    fn memory_accounting_scales_with_order() {
        let small = ContextBank::<u64>::new(64, 1, 1024, &[(1, 1)], 1, true, true);
        let big = ContextBank::<u64>::new(64, 1, 1024, &[(3, 1)], 3, true, true);
        assert!(big.memory_bytes() > small.memory_bytes() * 3);
    }
}

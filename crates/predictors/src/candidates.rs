//! Candidate predictor enumeration for the spec auto-tuner.
//!
//! The tuner's per-field search walks a fixed, deterministically ordered
//! menu of predictor selections — `LV[n]`, `ST[n]`, `FCMx[n]`, and
//! `DFCMx[n]` for bounded orders and heights. Enumerating the menu here,
//! next to the predictors themselves, keeps the search space honest: it
//! covers exactly the families the runtime implements, within the bounds
//! the spec validator accepts.

use tcgen_spec::{PredictorKind, PredictorSpec};

/// Bounds of the predictor-candidate menu.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSpace {
    /// Highest FCM/DFCM context order to try (the paper's configurations
    /// top out at 3; higher orders multiply table sizes by `2^(order-1)`).
    pub max_order: u32,
    /// Line heights to try, ascending.
    pub heights: Vec<u32>,
    /// Whether to offer the `ST[n]` stride extension.
    pub include_stride: bool,
}

impl Default for CandidateSpace {
    fn default() -> Self {
        Self { max_order: 3, heights: vec![1, 2, 4], include_stride: true }
    }
}

/// Enumerates every candidate predictor in the space, in a fixed order:
/// all `LV` heights, then `ST`, then `FCM` by order then height, then
/// `DFCM` likewise. The order never depends on anything but `space`, so
/// tuner runs are reproducible.
pub fn predictor_candidates(space: &CandidateSpace) -> Vec<PredictorSpec> {
    let mut out = Vec::new();
    for &h in &space.heights {
        out.push(PredictorSpec { kind: PredictorKind::Lv, order: 0, height: h });
    }
    if space.include_stride {
        for &h in &space.heights {
            out.push(PredictorSpec { kind: PredictorKind::St, order: 0, height: h });
        }
    }
    for kind in [PredictorKind::Fcm, PredictorKind::Dfcm] {
        for order in 1..=space.max_order {
            for &h in &space.heights {
                out.push(PredictorSpec { kind, order, height: h });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_size_and_order() {
        let all = predictor_candidates(&CandidateSpace::default());
        // 3 LV + 3 ST + 3 orders × 3 heights × 2 families.
        assert_eq!(all.len(), 24);
        assert_eq!(all[0].to_string(), "LV[1]");
        assert_eq!(all[3].to_string(), "ST[1]");
        assert_eq!(all[6].to_string(), "FCM1[1]");
        assert_eq!(all[23].to_string(), "DFCM3[4]");
    }

    #[test]
    fn enumeration_is_deterministic() {
        let space = CandidateSpace::default();
        assert_eq!(predictor_candidates(&space), predictor_candidates(&space));
    }

    #[test]
    fn stride_can_be_excluded() {
        let space = CandidateSpace { include_stride: false, ..Default::default() };
        assert!(predictor_candidates(&space).iter().all(|p| p.kind != PredictorKind::St));
    }

    #[test]
    fn candidates_validate_in_a_spec() {
        for p in predictor_candidates(&CandidateSpace::default()) {
            let src = format!(
                "TCgen Trace Specification;\n32-Bit Field 1 = {{: {p}}};\nPC = Field 1;"
            );
            tcgen_spec::parse(&src).unwrap_or_else(|e| panic!("{p}: {e}"));
        }
    }
}

//! Per-field predictor banks: the composition of LV, FCM, and DFCM
//! predictors a specification attaches to one field, with TCgen's table
//! sharing, renamed predictor codes, and ablation switches.
//!
//! Storage is width-specialized (paper §4): [`FieldBank`] is an enum over
//! [`TypedBank`] instantiations whose element type is the narrowest
//! unsigned integer covering the field's declared bit width, picked once
//! at construction. Every hot loop ([`TypedBank::model_column`],
//! [`TypedBank::replay_column`]) is monomorphized over that element, so
//! the inner loops run without per-value widening or double masking; the
//! enum is dispatched once per column job, not per record. See
//! [`crate::element`] for the masking argument that makes the narrowing
//! invisible in the emitted streams.

use tcgen_spec::{FieldSpec, PredictorKind, TraceSpec};

use crate::element::{width_mask, TableElement};
use crate::fcm::ContextBank;
use crate::occupancy::{OccTable, Occupancy, TableOccupancy};
use crate::policy::UpdatePolicy;
use crate::stride::StrideTable;
use crate::table::ValueTable;

/// Tunables corresponding to the paper's Table 2 ablation rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorOptions {
    /// Update policy (`Smart` = TCgen, `Always` = VPC3 / "no smart update").
    pub policy: UpdatePolicy,
    /// Incremental hash computation ("no fast hash function" when false).
    pub fast_hash: bool,
    /// Share last-value tables and first-level histories ("no shared
    /// tables" when false). Sharing never changes predictions, only
    /// speed and memory.
    pub shared_tables: bool,
    /// Adapt the hash shift to field width and table size (a §5.3
    /// enhancement over VPC3).
    pub adaptive_shift: bool,
    /// Store table elements with the narrowest unsigned type covering the
    /// field width (paper §4, minimal element types). Speed and memory
    /// only — the emitted streams are byte-identical either way — so it
    /// is not part of the container flags.
    pub minimal_elements: bool,
}

impl Default for PredictorOptions {
    fn default() -> Self {
        Self {
            policy: UpdatePolicy::Smart,
            fast_hash: true,
            shared_tables: true,
            adaptive_shift: true,
            minimal_elements: true,
        }
    }
}

/// Where one prediction slot reads its value from.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// `take` entries of last-value table `table`.
    Lv { table: usize, take: usize },
    /// All entries of second-level table `table` of FCM bank `bank`.
    Fcm { bank: usize, table: usize },
    /// All entries of DFCM bank `bank`'s table `table`, each added to the
    /// most recent value from last-value table `lv_table`.
    Dfcm { bank: usize, table: usize, lv_table: usize },
    /// `take` multiples of stride table `table`'s confirmed stride, each
    /// added to the most recent value from last-value table `lv_table`.
    St { table: usize, take: usize, lv_table: usize },
}

/// Records per two-pass modeling sub-batch: long enough to keep many
/// independent table-line fetches in flight, short enough that every
/// prefetched line survives in L2 until pass B probes it.
const PLAN_SUB: usize = 1024;

/// Hash-indexed table footprint below which modeling stays one-pass:
/// tables that fit comfortably in L2 serve their probes from cache
/// anyway, so resolving and prefetching indices ahead of time would be
/// pure overhead.
const PLAN_MIN_HASHED_BYTES: usize = 1 << 20;

/// A corrupt code or value stream detected by [`FieldBank::replay_column`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// A predictor code beyond the miss code.
    CodeOutOfRange {
        /// Record index within the column.
        record: usize,
        /// The offending code.
        code: u8,
    },
    /// The miss-value stream ran dry before the last miss code.
    MissingValue {
        /// Record index within the column.
        record: usize,
    },
    /// Miss values were left unconsumed after the last record.
    TrailingValues {
        /// Number of unconsumed miss values.
        left: usize,
    },
}

/// Version byte leading every [`FieldBank::snapshot`] encoding, bumped
/// whenever the byte layout changes so stale checkpoints fail loudly.
/// Version 2 is the compact encoding: never-touched table lines are
/// skipped via the occupancy bitmaps instead of serialized as zeros.
pub const SNAPSHOT_VERSION: u8 = 2;

/// A predictor-state snapshot that cannot be restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The snapshot was written by an unknown encoding version.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The snapshot's element width does not match this bank's.
    WrongElement {
        /// Element bits recorded in the snapshot.
        found: u8,
        /// Element bits this bank stores.
        expected: u8,
    },
    /// The snapshot body is not exactly the bank's state size.
    Length,
    /// A restored fast-mode hash indexes outside its table.
    HashOutOfRange,
    /// An occupancy bitmap is inconsistent with the bank's table sizes
    /// (wrong word count, or a bit set past the last line).
    Occupancy,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadVersion { found } => {
                write!(f, "unknown snapshot version {found}")
            }
            SnapshotError::WrongElement { found, expected } => {
                write!(f, "snapshot element width {found} does not match bank width {expected}")
            }
            SnapshotError::Length => write!(f, "snapshot length does not match bank state"),
            SnapshotError::HashOutOfRange => {
                write!(f, "snapshot hash state indexes outside its table")
            }
            SnapshotError::Occupancy => {
                write!(f, "snapshot occupancy bitmap is inconsistent with the bank's tables")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// All predictor state for one field, stored as element type `E`.
///
/// Obtained through [`FieldBank::new`], which picks `E`; the methods here
/// are the monomorphized kernels the enum dispatches into.
#[derive(Debug)]
pub struct TypedBank<E: TableElement> {
    /// The field mask within the element domain.
    mask: E,
    /// The same mask in the `u64` value domain (for the boundary API).
    mask_u64: u64,
    l1_mask: u64,
    lv_tables: Vec<ValueTable<E>>,
    fcm_banks: Vec<ContextBank<E>>,
    dfcm_banks: Vec<ContextBank<E>>,
    stride_tables: Vec<StrideTable<E>>,
    /// (bank, lv_table) pairs that need a stride on update.
    dfcm_updates: Vec<(usize, usize)>,
    /// (stride table, lv_table) pairs updated with the observed stride.
    st_updates: Vec<(usize, usize)>,
    sources: Vec<Source>,
    /// Predictor code -> (source index, offset within the source); lets
    /// replay jump straight to a slot without walking the source list.
    slots: Vec<(u32, u32)>,
    n_predictions: u32,
    policy: UpdatePolicy,
    /// First-level lines ever touched (shared by every L1-indexed table).
    l1_occ: Occupancy,
    /// Two-pass modeling scratch ([`Self::model_column`]): the current
    /// sub-batch's table indices, flattened record-major.
    plan_idx: Vec<u32>,
    /// Pass-A per-line last-value tracking (mirrors what the last-value
    /// tables will hold when pass B catches up); lazily revalidated per
    /// column via `plan_stamp`/`plan_gen`. Empty when no DFCM needs it.
    plan_last: Vec<E>,
    plan_stamp: Vec<u32>,
    plan_gen: u32,
    /// Whether [`Self::model_column`] runs the two-pass planned schedule
    /// (hash-indexed tables larger than [`PLAN_MIN_HASHED_BYTES`]).
    plan: bool,
}

impl<E: TableElement> TypedBank<E> {
    /// Builds the predictor state for `field` under `options`.
    ///
    /// # Panics
    ///
    /// Panics if `field` is invalid (no predictors, bad sizes) or wider
    /// than the element; [`FieldBank::new`] never lets either happen.
    fn new(field: &FieldSpec, options: PredictorOptions) -> Self {
        assert!(field.bits <= E::BITS, "field wider than the table element");
        let mask_u64 = if field.bits == 64 { u64::MAX } else { (1u64 << field.bits) - 1 };
        let l1 = field.l1;
        let mut lv_tables = Vec::new();
        let mut fcm_banks = Vec::new();
        let mut dfcm_banks = Vec::new();
        let mut stride_tables = Vec::new();
        let mut dfcm_updates = Vec::new();
        let mut st_updates = Vec::new();
        let mut sources = Vec::new();

        if options.shared_tables {
            // One last-value table sized for the tallest consumer, one
            // context bank per (D)FCM family.
            let lv_entries = field.lv_entries();
            let shared_lv = if lv_entries > 0 {
                lv_tables.push(ValueTable::new(l1 as usize, lv_entries as usize));
                Some(0usize)
            } else {
                None
            };
            let fcm_orders: Vec<(u32, u32)> = field
                .predictors
                .iter()
                .filter(|p| p.kind == PredictorKind::Fcm)
                .map(|p| (p.order, p.height))
                .collect();
            let dfcm_orders: Vec<(u32, u32)> = field
                .predictors
                .iter()
                .filter(|p| p.kind == PredictorKind::Dfcm)
                .map(|p| (p.order, p.height))
                .collect();
            if !fcm_orders.is_empty() {
                fcm_banks.push(ContextBank::new(
                    field.bits,
                    l1,
                    field.l2,
                    &fcm_orders,
                    field.max_fcm_order(),
                    options.adaptive_shift,
                    options.fast_hash,
                ));
            }
            if !dfcm_orders.is_empty() {
                dfcm_banks.push(ContextBank::new(
                    field.bits,
                    l1,
                    field.l2,
                    &dfcm_orders,
                    field.max_dfcm_order(),
                    options.adaptive_shift,
                    options.fast_hash,
                ));
                dfcm_updates.push((0, shared_lv.expect("DFCM implies a last-value table")));
            }
            // All ST predictors of a field share one stride table.
            let shared_st = if field.has_stride_predictor() {
                stride_tables.push(StrideTable::new(l1 as usize));
                let lv = shared_lv.expect("ST implies a last-value table");
                st_updates.push((0, lv));
                Some(0usize)
            } else {
                None
            };
            let mut fcm_i = 0usize;
            let mut dfcm_i = 0usize;
            for p in &field.predictors {
                match p.kind {
                    PredictorKind::Lv => sources.push(Source::Lv {
                        table: shared_lv.expect("LV implies a last-value table"),
                        take: p.height as usize,
                    }),
                    PredictorKind::Fcm => {
                        sources.push(Source::Fcm { bank: 0, table: fcm_i });
                        fcm_i += 1;
                    }
                    PredictorKind::Dfcm => {
                        sources.push(Source::Dfcm {
                            bank: 0,
                            table: dfcm_i,
                            lv_table: shared_lv.expect("DFCM implies a last-value table"),
                        });
                        dfcm_i += 1;
                    }
                    PredictorKind::St => sources.push(Source::St {
                        table: shared_st.expect("ST table allocated above"),
                        take: p.height as usize,
                        lv_table: shared_lv.expect("ST implies a last-value table"),
                    }),
                }
            }
        } else {
            // Ablation: every predictor owns private tables. Predictions
            // are identical; only memory traffic grows.
            for p in &field.predictors {
                match p.kind {
                    PredictorKind::Lv => {
                        lv_tables.push(ValueTable::new(l1 as usize, p.height as usize));
                        sources.push(Source::Lv {
                            table: lv_tables.len() - 1,
                            take: p.height as usize,
                        });
                    }
                    PredictorKind::Fcm => {
                        // The family's maximum order fixes the hash
                        // parameters, so the ablation only duplicates
                        // state without changing any prediction.
                        fcm_banks.push(ContextBank::new(
                            field.bits,
                            l1,
                            field.l2,
                            &[(p.order, p.height)],
                            field.max_fcm_order(),
                            options.adaptive_shift,
                            options.fast_hash,
                        ));
                        sources.push(Source::Fcm { bank: fcm_banks.len() - 1, table: 0 });
                    }
                    PredictorKind::Dfcm => {
                        dfcm_banks.push(ContextBank::new(
                            field.bits,
                            l1,
                            field.l2,
                            &[(p.order, p.height)],
                            field.max_dfcm_order(),
                            options.adaptive_shift,
                            options.fast_hash,
                        ));
                        lv_tables.push(ValueTable::new(l1 as usize, 1));
                        let bank = dfcm_banks.len() - 1;
                        let lv_table = lv_tables.len() - 1;
                        dfcm_updates.push((bank, lv_table));
                        sources.push(Source::Dfcm { bank, table: 0, lv_table });
                    }
                    PredictorKind::St => {
                        stride_tables.push(StrideTable::new(l1 as usize));
                        lv_tables.push(ValueTable::new(l1 as usize, 1));
                        let table = stride_tables.len() - 1;
                        let lv_table = lv_tables.len() - 1;
                        st_updates.push((table, lv_table));
                        sources.push(Source::St { table, take: p.height as usize, lv_table });
                    }
                }
            }
        }

        let hashed_bytes: usize =
            fcm_banks.iter().chain(dfcm_banks.iter()).map(|b| b.memory_bytes()).sum();
        let mut bank = Self {
            mask: width_mask::<E>(field.bits),
            mask_u64,
            l1_mask: l1 - 1,
            lv_tables,
            fcm_banks,
            dfcm_banks,
            stride_tables,
            sources,
            slots: Vec::new(),
            n_predictions: field.prediction_count(),
            policy: options.policy,
            l1_occ: Occupancy::new(l1 as usize),
            plan_idx: Vec::new(),
            plan_last: if dfcm_updates.is_empty() {
                Vec::new()
            } else {
                vec![E::default(); l1 as usize]
            },
            plan_stamp: if dfcm_updates.is_empty() { Vec::new() } else { vec![0; l1 as usize] },
            plan_gen: 0,
            plan: hashed_bytes >= PLAN_MIN_HASHED_BYTES,
            dfcm_updates,
            st_updates,
        };
        bank.slots = bank.build_slots();
        debug_assert_eq!(bank.slots.len(), bank.n_predictions as usize);
        bank
    }

    /// The code -> (source, offset) map; one entry per prediction slot,
    /// in code order.
    fn build_slots(&self) -> Vec<(u32, u32)> {
        let mut slots = Vec::with_capacity(self.n_predictions as usize);
        for (si, source) in self.sources.iter().enumerate() {
            for off in 0..self.source_height(source) {
                slots.push((si as u32, off as u32));
            }
        }
        slots
    }

    #[inline]
    fn line(&self, pc: u64) -> usize {
        (pc & self.l1_mask) as usize
    }

    /// Truncates a `u64`-domain value to the element and masks it to the
    /// field width — the only conversion on the enum boundary.
    #[inline]
    fn narrow(&self, v: u64) -> E {
        E::from_u64(v) & self.mask
    }

    /// The value of one prediction slot, computed lazily.
    #[inline]
    fn slot_value(&self, line: usize, source: &Source, offset: usize) -> E {
        match *source {
            Source::Lv { table, .. } => self.lv_tables[table].line(line)[offset],
            Source::Fcm { bank, table } => self.fcm_banks[bank].value_at(line, table, offset),
            Source::Dfcm { bank, table, lv_table } => {
                let last = self.lv_tables[lv_table].first(line);
                let stride = self.dfcm_banks[bank].value_at(line, table, offset);
                last.wrapping_add(stride) & self.mask
            }
            Source::St { table, lv_table, .. } => {
                let last = self.lv_tables[lv_table].first(line);
                let stride = self.stride_tables[table].confirmed(line);
                last.wrapping_add(stride.wrapping_mul(E::from_u64(offset as u64 + 1)))
                    & self.mask
            }
        }
    }

    /// Number of prediction slots a source contributes.
    #[inline]
    fn source_height(&self, source: &Source) -> usize {
        match *source {
            Source::Lv { take, .. } => take,
            Source::Fcm { bank, table } => self.fcm_banks[bank].table_height(table),
            Source::Dfcm { bank, table, .. } => self.dfcm_banks[bank].table_height(table),
            Source::St { take, .. } => take,
        }
    }

    /// [`FieldBank::find_code`] with the L1 line already resolved and
    /// `value` already masked. One `Source` dispatch per predictor rather
    /// than per slot: each arm searches all of its slots in one go, with
    /// DFCM and ST matches done in stride space — `last + stride ≡ value`
    /// exactly when `stride ≡ value - last` (mod 2^width), and stored
    /// strides are always masked — so no prediction list is materialized.
    #[inline]
    fn find_code_in_line(&self, line: usize, value: E) -> u8 {
        let mut code = 0u8;
        for source in &self.sources {
            match *source {
                Source::Lv { table, take } => {
                    let slots = &self.lv_tables[table].line(line)[..take];
                    if let Some(k) = slots.iter().position(|&v| v == value) {
                        return code + k as u8;
                    }
                    code += take as u8;
                }
                Source::Fcm { bank, table } => {
                    let fcm = &self.fcm_banks[bank];
                    if let Some(k) = fcm.find_value(line, table, value) {
                        return code + k as u8;
                    }
                    code += fcm.table_height(table) as u8;
                }
                Source::Dfcm { bank, table, lv_table } => {
                    let last = self.lv_tables[lv_table].first(line);
                    let target = value.wrapping_sub(last) & self.mask;
                    let dfcm = &self.dfcm_banks[bank];
                    if let Some(k) = dfcm.find_value(line, table, target) {
                        return code + k as u8;
                    }
                    code += dfcm.table_height(table) as u8;
                }
                Source::St { table, take, lv_table } => {
                    let stride = self.stride_tables[table].confirmed(line);
                    let mut pred = self.lv_tables[lv_table].first(line);
                    for k in 0..take {
                        pred = pred.wrapping_add(stride) & self.mask;
                        if pred == value {
                            return code + k as u8;
                        }
                    }
                    code += take as u8;
                }
            }
        }
        code
    }

    /// The predicted value for `code`, or `None` for the miss code.
    fn value_for_code(&self, pc: u64, code: u8) -> Option<u64> {
        if u32::from(code) >= self.n_predictions {
            return None;
        }
        let line = self.line(pc);
        let mut remaining = usize::from(code);
        for source in &self.sources {
            let height = self.source_height(source);
            if remaining < height {
                return Some(self.slot_value(line, source, remaining).to_u64());
            }
            remaining -= height;
        }
        unreachable!("code < n_predictions always lands in a source")
    }

    /// Appends all predictions for the record whose PC is `pc` to `out`,
    /// in predictor-code order, widened to the `u64` value domain.
    fn predict_into(&self, pc: u64, out: &mut Vec<u64>) {
        let line = self.line(pc);
        for source in &self.sources {
            match *source {
                Source::Lv { table, take } => {
                    out.extend(
                        self.lv_tables[table].line(line)[..take].iter().map(|v| v.to_u64()),
                    );
                }
                Source::Fcm { bank, table } => {
                    self.fcm_banks[bank].predict_into(line, table, out);
                }
                Source::Dfcm { bank, table, lv_table } => {
                    let last = self.lv_tables[lv_table].first(line);
                    let before = out.len();
                    self.dfcm_banks[bank].predict_into(line, table, out);
                    for v in &mut out[before..] {
                        *v = (last.wrapping_add(E::from_u64(*v)) & self.mask).to_u64();
                    }
                }
                Source::St { table, take, lv_table } => {
                    let stride = self.stride_tables[table].confirmed(line);
                    let mut pred = self.lv_tables[lv_table].first(line);
                    for _ in 0..take {
                        pred = pred.wrapping_add(stride) & self.mask;
                        out.push(pred.to_u64());
                    }
                }
            }
        }
    }

    /// [`FieldBank::update`] with the line resolved and the value masked.
    #[inline]
    fn update_line(&mut self, line: usize, value: E) {
        self.l1_occ.mark(line);
        for bank in &mut self.fcm_banks {
            bank.update(line, value, self.policy);
        }
        // Strides use the pre-update last values.
        for &(bank, lv_table) in &self.dfcm_updates {
            let last = self.lv_tables[lv_table].first(line);
            let stride = value.wrapping_sub(last) & self.mask;
            self.dfcm_banks[bank].update(line, stride, self.policy);
        }
        for &(table, lv_table) in &self.st_updates {
            let last = self.lv_tables[lv_table].first(line);
            let stride = value.wrapping_sub(last) & self.mask;
            self.stride_tables[table].update(line, stride);
        }
        for table in &mut self.lv_tables {
            table.update(line, value, self.policy);
        }
    }

    /// The monomorphized modeling kernel behind
    /// [`FieldBank::model_column`]: columns arrive as `u64` (the
    /// transpose stage is width-agnostic), each value is truncated to the
    /// element once, and the whole search/update loop then runs at the
    /// element width.
    ///
    /// Fields with hash-indexed tables run a two-pass schedule over
    /// [`PLAN_SUB`]-record sub-batches. Pass A touches only the
    /// first-level hash state — every (D)FCM table index depends on
    /// nothing but the value sequence, because the running hashes fold
    /// the incoming values (or strides, reconstructible from the column
    /// and the per-line last value) and never read a table — so it can
    /// resolve a whole batch of indices and prefetch their lines. Pass B
    /// then probes and updates at the recorded indices with the lines
    /// already in cache, turning a chain of dependent multi-megabyte
    /// table misses into overlapped ones. The codes, misses, and final
    /// table state are identical to the one-pass loop; the equivalence
    /// test drives both against each other.
    fn model_column(
        &mut self,
        pcs: &[u64],
        values: &[u64],
        codes_out: &mut Vec<u8>,
        misses_out: &mut Vec<u64>,
    ) {
        assert_eq!(pcs.len(), values.len(), "pc and value columns must align");
        let miss = self.n_predictions as u8;
        codes_out.reserve(values.len());
        if !self.plan {
            // No hash-indexed tables, or tables small enough to live in
            // L2: probes hit cache without help, so plan one-pass.
            for (&pc, &raw) in pcs.iter().zip(values) {
                let line = self.line(pc);
                let value = E::from_u64(raw) & self.mask;
                let code = self.find_code_in_line(line, value);
                codes_out.push(code);
                if code == miss {
                    misses_out.push(value.to_u64());
                }
                self.update_line(line, value);
            }
            return;
        }

        let (fcm_base, dfcm_base, per_rec) = self.plan_layout();

        // One generation per column: pass A's last-value tracking starts
        // from the tables' current state, not a previous column's.
        self.plan_gen = self.plan_gen.wrapping_add(1);
        if self.plan_gen == 0 {
            self.plan_stamp.fill(0);
            self.plan_gen = 1;
        }
        let gen = self.plan_gen;

        let mut idx_buf = std::mem::take(&mut self.plan_idx);
        for (pc_sub, val_sub) in pcs.chunks(PLAN_SUB).zip(values.chunks(PLAN_SUB)) {
            // Pass A: resolve and prefetch every table index.
            idx_buf.clear();
            idx_buf.reserve(pc_sub.len() * per_rec);
            for (&pc, &raw) in pc_sub.iter().zip(val_sub) {
                let line = self.line(pc);
                let value = E::from_u64(raw) & self.mask;
                for bank in &mut self.fcm_banks {
                    bank.plan_record(line, value.to_u64(), &mut idx_buf);
                }
                if !self.dfcm_updates.is_empty() {
                    let last = if self.plan_stamp[line] == gen {
                        self.plan_last[line]
                    } else {
                        self.plan_stamp[line] = gen;
                        let lv = self.dfcm_updates[0].1;
                        let v = self.lv_tables[lv].first(line);
                        self.plan_last[line] = v;
                        v
                    };
                    let stride = value.wrapping_sub(last) & self.mask;
                    for &(b, _) in &self.dfcm_updates {
                        self.dfcm_banks[b].plan_record(line, stride.to_u64(), &mut idx_buf);
                    }
                    self.plan_last[line] = value;
                }
            }
            // Pass B: probe and update at the planned indices.
            for (k, (&pc, &raw)) in pc_sub.iter().zip(val_sub).enumerate() {
                let line = self.line(pc);
                let value = E::from_u64(raw) & self.mask;
                let idx_row = &idx_buf[k * per_rec..(k + 1) * per_rec];
                let code = self.find_code_planned(line, value, idx_row, &fcm_base, &dfcm_base);
                codes_out.push(code);
                if code == miss {
                    misses_out.push(value.to_u64());
                }
                self.update_line_planned(line, value, idx_row, &fcm_base, &dfcm_base);
            }
        }
        self.plan_idx = idx_buf;
    }

    /// Flat per-record index layout for the planned schedules: the fcm
    /// banks' tables in bank order, then the dfcm banks' tables in update
    /// order. Returns `(fcm_base, dfcm_base, indices_per_record)`.
    fn plan_layout(&self) -> (Vec<usize>, Vec<usize>, usize) {
        let mut fcm_base = vec![0usize; self.fcm_banks.len()];
        let mut off = 0usize;
        for (b, bank) in self.fcm_banks.iter().enumerate() {
            fcm_base[b] = off;
            off += bank.table_count();
        }
        let mut dfcm_base = vec![0usize; self.dfcm_banks.len()];
        for &(b, _) in &self.dfcm_updates {
            dfcm_base[b] = off;
            off += self.dfcm_banks[b].table_count();
        }
        (fcm_base, dfcm_base, off)
    }

    /// [`Self::find_code_in_line`] with every hash-indexed probe taken
    /// from the planned `idx_row` instead of the live hash state (which
    /// pass A has already advanced past this record).
    #[inline]
    fn find_code_planned(
        &self,
        line: usize,
        value: E,
        idx_row: &[u32],
        fcm_base: &[usize],
        dfcm_base: &[usize],
    ) -> u8 {
        let mut code = 0u8;
        for source in &self.sources {
            match *source {
                Source::Lv { table, take } => {
                    let slots = &self.lv_tables[table].line(line)[..take];
                    if let Some(k) = slots.iter().position(|&v| v == value) {
                        return code + k as u8;
                    }
                    code += take as u8;
                }
                Source::Fcm { bank, table } => {
                    let fcm = &self.fcm_banks[bank];
                    let idx = idx_row[fcm_base[bank] + table] as usize;
                    if let Some(k) = fcm.find_value_at(table, idx, value) {
                        return code + k as u8;
                    }
                    code += fcm.table_height(table) as u8;
                }
                Source::Dfcm { bank, table, lv_table } => {
                    let last = self.lv_tables[lv_table].first(line);
                    let target = value.wrapping_sub(last) & self.mask;
                    let dfcm = &self.dfcm_banks[bank];
                    let idx = idx_row[dfcm_base[bank] + table] as usize;
                    if let Some(k) = dfcm.find_value_at(table, idx, target) {
                        return code + k as u8;
                    }
                    code += dfcm.table_height(table) as u8;
                }
                Source::St { table, take, lv_table } => {
                    let stride = self.stride_tables[table].confirmed(line);
                    let mut pred = self.lv_tables[lv_table].first(line);
                    for k in 0..take {
                        pred = pred.wrapping_add(stride) & self.mask;
                        if pred == value {
                            return code + k as u8;
                        }
                    }
                    code += take as u8;
                }
            }
        }
        code
    }

    /// [`Self::update_line`] with the (D)FCM table indices planned by
    /// pass A; the hash state is untouched here because
    /// [`ContextBank::plan_record`] already advanced it.
    #[inline]
    fn update_line_planned(
        &mut self,
        line: usize,
        value: E,
        idx_row: &[u32],
        fcm_base: &[usize],
        dfcm_base: &[usize],
    ) {
        self.l1_occ.mark(line);
        for (b, bank) in self.fcm_banks.iter_mut().enumerate() {
            let base = fcm_base[b];
            bank.update_tables_at(
                &idx_row[base..base + bank.table_count()],
                value,
                self.policy,
            );
        }
        // Strides use the pre-update last values.
        for &(bank, lv_table) in &self.dfcm_updates {
            let last = self.lv_tables[lv_table].first(line);
            let stride = value.wrapping_sub(last) & self.mask;
            let dfcm = &mut self.dfcm_banks[bank];
            let base = dfcm_base[bank];
            dfcm.update_tables_at(
                &idx_row[base..base + dfcm.table_count()],
                stride,
                self.policy,
            );
        }
        for &(table, lv_table) in &self.st_updates {
            let last = self.lv_tables[lv_table].first(line);
            let stride = value.wrapping_sub(last) & self.mask;
            self.stride_tables[table].update(line, stride);
        }
        for table in &mut self.lv_tables {
            table.update(line, value, self.policy);
        }
    }

    /// The monomorphized replay kernel behind
    /// [`FieldBank::replay_column`].
    ///
    /// Fields with large hash-indexed tables run a software-pipelined
    /// schedule instead of modeling's sub-batch one. Replay cannot plan a
    /// whole batch ahead: advancing a record's hashes needs its value,
    /// and the value of a predicted record comes out of the very tables
    /// the plan would prefetch. What it *can* do is look exactly one
    /// record ahead — the moment record `k`'s hashes advance, record
    /// `k+1`'s table indices are fixed, before `k`'s table updates have
    /// run. Resolving and prefetching there hides the next record's
    /// table-line miss behind the current record's update stores. Codes,
    /// values, and final table state are identical to the one-pass loop;
    /// the equivalence test drives both against each other.
    fn replay_column(
        &mut self,
        pcs: Option<&[u64]>,
        codes: &[u8],
        misses: &[u64],
        out: &mut Vec<u64>,
    ) -> Result<(), ReplayError> {
        if pcs.is_none() {
            debug_assert_eq!(self.l1_mask, 0, "only the PC field (L1 = 1) replays without PCs");
        }
        let miss = self.n_predictions as usize;
        let mut next_miss = 0usize;
        out.reserve(codes.len());
        if !self.plan || codes.is_empty() {
            for (rec, &code) in codes.iter().enumerate() {
                let line = match pcs {
                    Some(p) => self.line(p[rec]),
                    None => 0,
                };
                let c = code as usize;
                let value = if c < miss {
                    let (si, offset) = self.slots[c];
                    self.slot_value(line, &self.sources[si as usize], offset as usize)
                } else if c == miss {
                    let Some(&v) = misses.get(next_miss) else {
                        return Err(ReplayError::MissingValue { record: rec });
                    };
                    next_miss += 1;
                    E::from_u64(v) & self.mask
                } else {
                    return Err(ReplayError::CodeOutOfRange { record: rec, code });
                };
                out.push(value.to_u64());
                self.update_line(line, value);
            }
            if next_miss != misses.len() {
                return Err(ReplayError::TrailingValues { left: misses.len() - next_miss });
            }
            return Ok(());
        }

        let (fcm_base, dfcm_base, per_rec) = self.plan_layout();
        let mut row_cur = std::mem::take(&mut self.plan_idx);
        let mut row_next = Vec::with_capacity(per_rec);
        let line_of = |bank: &Self, rec: usize| match pcs {
            Some(p) => bank.line(p[rec]),
            None => 0,
        };
        // Indices for record 0 come straight from the initial hash state.
        row_cur.clear();
        self.resolve_row(line_of(self, 0), &mut row_cur);
        for (rec, &code) in codes.iter().enumerate() {
            let line = line_of(self, rec);
            let c = code as usize;
            // Decode against the pre-advance indices of this record.
            let value = if c < miss {
                let (si, offset) = self.slots[c];
                self.slot_value_planned(
                    line,
                    &self.sources[si as usize],
                    offset as usize,
                    &row_cur,
                    &fcm_base,
                    &dfcm_base,
                )
            } else if c == miss {
                let Some(&v) = misses.get(next_miss) else {
                    self.plan_idx = row_cur;
                    return Err(ReplayError::MissingValue { record: rec });
                };
                next_miss += 1;
                E::from_u64(v) & self.mask
            } else {
                self.plan_idx = row_cur;
                return Err(ReplayError::CodeOutOfRange { record: rec, code });
            };
            out.push(value.to_u64());
            // Advance the hashes (values for FCM, pre-update strides for
            // DFCM), then resolve and prefetch the *next* record's lines
            // so the fetch overlaps this record's table updates below.
            self.advance_row(line, value);
            if rec + 1 < codes.len() {
                row_next.clear();
                self.resolve_row(line_of(self, rec + 1), &mut row_next);
            }
            self.update_line_planned(line, value, &row_cur, &fcm_base, &dfcm_base);
            std::mem::swap(&mut row_cur, &mut row_next);
        }
        self.plan_idx = row_cur;
        if next_miss != misses.len() {
            return Err(ReplayError::TrailingValues { left: misses.len() - next_miss });
        }
        Ok(())
    }

    /// Pushes the current table index of every hash-indexed table (fcm
    /// banks in bank order, then dfcm banks in update order — the
    /// [`Self::plan_layout`] order) onto `row` and prefetches each line.
    #[inline]
    fn resolve_row(&self, line: usize, row: &mut Vec<u32>) {
        for bank in &self.fcm_banks {
            bank.resolve_record(line, row);
        }
        for &(b, _) in &self.dfcm_updates {
            self.dfcm_banks[b].resolve_record(line, row);
        }
    }

    /// Advances every bank's first-level hash state for one replayed
    /// record: FCM banks fold the value, DFCM banks fold the stride
    /// against the pre-update last value — the same inputs
    /// [`ContextBank::update`] folds inside [`Self::update_line`].
    #[inline]
    fn advance_row(&mut self, line: usize, value: E) {
        for bank in &mut self.fcm_banks {
            bank.advance_hashes(line, value.to_u64());
        }
        for &(b, lv_table) in &self.dfcm_updates {
            let last = self.lv_tables[lv_table].first(line);
            let stride = value.wrapping_sub(last) & self.mask;
            self.dfcm_banks[b].advance_hashes(line, stride.to_u64());
        }
    }

    /// [`Self::slot_value`] with every hash-indexed read taken from the
    /// resolved `idx_row` instead of the live hash state (which the
    /// pipelined replay advances before the tables are updated).
    #[inline]
    fn slot_value_planned(
        &self,
        line: usize,
        source: &Source,
        offset: usize,
        idx_row: &[u32],
        fcm_base: &[usize],
        dfcm_base: &[usize],
    ) -> E {
        match *source {
            Source::Lv { table, .. } => self.lv_tables[table].line(line)[offset],
            Source::Fcm { bank, table } => {
                let idx = idx_row[fcm_base[bank] + table] as usize;
                self.fcm_banks[bank].value_at_index(table, idx, offset)
            }
            Source::Dfcm { bank, table, lv_table } => {
                let last = self.lv_tables[lv_table].first(line);
                let idx = idx_row[dfcm_base[bank] + table] as usize;
                let stride = self.dfcm_banks[bank].value_at_index(table, idx, offset);
                last.wrapping_add(stride) & self.mask
            }
            Source::St { table, lv_table, .. } => {
                let last = self.lv_tables[lv_table].first(line);
                let stride = self.stride_tables[table].confirmed(line);
                last.wrapping_add(stride.wrapping_mul(E::from_u64(offset as u64 + 1)))
                    & self.mask
            }
        }
    }

    /// Approximate memory footprint in bytes, including hash state.
    fn memory_bytes(&self) -> usize {
        self.hash_state_bytes() + self.table_bytes()
    }

    /// First-level hash/history bytes (width-independent).
    fn hash_state_bytes(&self) -> usize {
        self.fcm_banks
            .iter()
            .chain(&self.dfcm_banks)
            .map(|b| b.memory_bytes() - b.table_memory_bytes())
            .sum()
    }

    /// Bytes held by value tables alone — the storage the minimal
    /// element types shrink (last-value, (D)FCM second-level, stride).
    fn table_bytes(&self) -> usize {
        self.lv_tables.iter().map(|t| t.memory_bytes()).sum::<usize>()
            + self.fcm_banks.iter().map(|b| b.table_memory_bytes()).sum::<usize>()
            + self.dfcm_banks.iter().map(|b| b.table_memory_bytes()).sum::<usize>()
            + self.stride_tables.iter().map(|t| t.memory_bytes()).sum::<usize>()
    }

    /// Serializes this bank's state to `out` sparsely, little endian.
    /// Tables are zero-initialized and a line only ever deviates from
    /// zero after an update, and every update marks the line's occupancy
    /// bit — so never-touched lines carry no information and are skipped
    /// entirely. For the paper specs, where multi-megabyte hash tables
    /// stay mostly empty for millions of records, this shrinks checkpoint
    /// frames from the full table footprint to roughly the touched
    /// working set.
    ///
    /// Layout: the L1 occupancy bitmap (raw `u64` words), then per
    /// last-value table the touched L1 lines in ascending order, then per
    /// FCM and DFCM bank its hash state for the touched L1 lines (4-byte
    /// hashes in fast mode, 8-byte history otherwise) followed by each
    /// second-level table's own occupancy bitmap and touched lines, then
    /// per stride table the touched L1 lines' `(last, confirmed)` pairs.
    /// Elements are written at the element width. Planning scratch is
    /// excluded — it revalidates itself per column.
    fn snapshot_into(&self, out: &mut Vec<u8>) {
        let w = (E::BITS / 8) as usize;
        fn put(out: &mut Vec<u8>, v: u64, w: usize) {
            out.extend_from_slice(&v.to_le_bytes()[..w]);
        }
        fn put_bitmap(out: &mut Vec<u8>, occ: &Occupancy) {
            for &word in occ.words() {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        // Every L1-indexed structure (last-value, hash state, stride)
        // shares the one l1_occ map: update_line marks it before touching
        // any of them.
        let mut l1_lines = Vec::with_capacity(self.l1_occ.written() as usize);
        self.l1_occ.for_each_set(|line| l1_lines.push(line));
        put_bitmap(out, &self.l1_occ);
        for t in &self.lv_tables {
            for &line in &l1_lines {
                for v in t.line(line) {
                    put(out, v.to_u64(), w);
                }
            }
        }
        for bank in self.fcm_banks.iter().chain(&self.dfcm_banks) {
            let (hashes, history) = bank.hash_state();
            let depth = bank.max_order();
            for &line in &l1_lines {
                let start = line * depth;
                if !hashes.is_empty() {
                    for &h in &hashes[start..start + depth] {
                        put(out, u64::from(h), 4);
                    }
                } else {
                    for &h in &history[start..start + depth] {
                        put(out, h, 8);
                    }
                }
            }
            for (t, table) in bank.tables().iter().enumerate() {
                let occ = bank.occupancy(t);
                put_bitmap(out, occ);
                occ.for_each_set(|idx| {
                    for v in table.table.line(idx) {
                        put(out, v.to_u64(), w);
                    }
                });
            }
        }
        for t in &self.stride_tables {
            let vals = t.values();
            for &line in &l1_lines {
                put(out, vals[line * 2].to_u64(), w);
                put(out, vals[line * 2 + 1].to_u64(), w);
            }
        }
    }

    /// The inverse of [`Self::snapshot_into`]: overwrites this bank's
    /// state from `bytes`. All state is zeroed first (lines absent from
    /// the snapshot must return to their construction defaults), values
    /// are re-masked to the field width on the way in, occupancy bitmaps
    /// are validated against the table sizes, and fast-mode hashes are
    /// range-checked — so a forged snapshot can only yield wrong output,
    /// never a panic.
    fn restore_from(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let w = (E::BITS / 8) as usize;
        let mask = self.mask;
        let mut pos = 0usize;
        fn read(bytes: &[u8], pos: &mut usize, w: usize) -> Result<u64, SnapshotError> {
            let s = bytes.get(*pos..*pos + w).ok_or(SnapshotError::Length)?;
            *pos += w;
            let mut v = 0u64;
            for (i, &b) in s.iter().enumerate() {
                v |= u64::from(b) << (8 * i);
            }
            Ok(v)
        }
        /// Reads a bitmap into `occ` and returns its set lines, ascending.
        fn read_bitmap(
            bytes: &[u8],
            pos: &mut usize,
            occ: &mut Occupancy,
        ) -> Result<Vec<usize>, SnapshotError> {
            let mut words = Vec::with_capacity(occ.words().len());
            for _ in 0..occ.words().len() {
                words.push(read(bytes, pos, 8)?);
            }
            occ.set_from_words(&words).map_err(|_| SnapshotError::Occupancy)?;
            let mut lines = Vec::with_capacity(occ.written() as usize);
            occ.for_each_set(|line| lines.push(line));
            Ok(lines)
        }
        for t in &mut self.lv_tables {
            t.values_mut().fill(E::default());
        }
        for bank in self.fcm_banks.iter_mut().chain(self.dfcm_banks.iter_mut()) {
            let (hashes, history) = bank.hash_state_mut();
            hashes.fill(0);
            history.fill(0);
            for t in bank.tables_mut() {
                t.table.values_mut().fill(E::default());
            }
        }
        for t in &mut self.stride_tables {
            t.values_mut().fill(E::default());
        }
        let l1_lines = read_bitmap(bytes, &mut pos, &mut self.l1_occ)?;
        for t in &mut self.lv_tables {
            let height = t.height();
            let vals = t.values_mut();
            for &line in &l1_lines {
                for v in &mut vals[line * height..(line + 1) * height] {
                    *v = E::from_u64(read(bytes, &mut pos, w)?) & mask;
                }
            }
        }
        for bank in self.fcm_banks.iter_mut().chain(self.dfcm_banks.iter_mut()) {
            let depth = bank.max_order();
            {
                let (hashes, history) = bank.hash_state_mut();
                for &line in &l1_lines {
                    let start = line * depth;
                    if !hashes.is_empty() {
                        for h in &mut hashes[start..start + depth] {
                            *h = read(bytes, &mut pos, 4)? as u32;
                        }
                    } else {
                        for h in &mut history[start..start + depth] {
                            *h = read(bytes, &mut pos, 8)?;
                        }
                    }
                }
            }
            for t in 0..bank.table_count() {
                let lines = read_bitmap(bytes, &mut pos, bank.occupancy_mut(t))?;
                let table = &mut bank.tables_mut()[t].table;
                let height = table.height();
                let vals = table.values_mut();
                for idx in lines {
                    for v in &mut vals[idx * height..(idx + 1) * height] {
                        *v = E::from_u64(read(bytes, &mut pos, w)?) & mask;
                    }
                }
            }
            if !bank.hash_indices_valid() {
                return Err(SnapshotError::HashOutOfRange);
            }
        }
        for t in &mut self.stride_tables {
            let vals = t.values_mut();
            for &line in &l1_lines {
                vals[line * 2] = E::from_u64(read(bytes, &mut pos, w)?) & mask;
                vals[line * 2 + 1] = E::from_u64(read(bytes, &mut pos, w)?) & mask;
            }
        }
        if pos != bytes.len() {
            return Err(SnapshotError::Length);
        }
        Ok(())
    }

    /// Occupancy of every table: the shared L1 line space first, then
    /// each (D)FCM second-level table in predictor order.
    fn occupancy(&self) -> Vec<TableOccupancy> {
        let mut out = vec![TableOccupancy {
            table: OccTable::L1,
            lines_written: self.l1_occ.written(),
            lines_total: self.l1_occ.lines(),
        }];
        for bank in &self.fcm_banks {
            for (order, lines_written, lines_total) in bank.occupancies() {
                out.push(TableOccupancy {
                    table: OccTable::FcmL2 { order },
                    lines_written,
                    lines_total,
                });
            }
        }
        for bank in &self.dfcm_banks {
            for (order, lines_written, lines_total) in bank.occupancies() {
                out.push(TableOccupancy {
                    table: OccTable::DfcmL2 { order },
                    lines_written,
                    lines_total,
                });
            }
        }
        out
    }
}

/// All predictor state for one field, dispatched over the minimal
/// element type picked at construction (paper §4).
///
/// The enum is resolved once per call — and the columnar calls process a
/// whole column per dispatch — so the per-record loops run fully
/// monomorphized.
#[derive(Debug)]
pub enum FieldBank {
    /// Fields up to 8 bits wide.
    U8(TypedBank<u8>),
    /// Fields of 9..=16 bits.
    U16(TypedBank<u16>),
    /// Fields of 17..=32 bits.
    U32(TypedBank<u32>),
    /// Fields of 33..=64 bits, and every field when
    /// [`PredictorOptions::minimal_elements`] is off.
    U64(TypedBank<u64>),
}

/// Runs `$body` with `$bank` bound to the inner [`TypedBank`], whatever
/// its element type.
macro_rules! dispatch {
    ($self:expr, $bank:ident => $body:expr) => {
        match $self {
            FieldBank::U8($bank) => $body,
            FieldBank::U16($bank) => $body,
            FieldBank::U32($bank) => $body,
            FieldBank::U64($bank) => $body,
        }
    };
}

impl FieldBank {
    /// Builds the predictor state for `field` under `options`, storing
    /// table elements with the narrowest type that holds the field's bit
    /// width (or `u64` for everything when
    /// [`PredictorOptions::minimal_elements`] is off).
    ///
    /// # Panics
    ///
    /// Panics if `field` is invalid (no predictors, bad sizes); validated
    /// specifications never trigger this.
    pub fn new(field: &FieldSpec, options: PredictorOptions) -> Self {
        let element_bits = if options.minimal_elements { field.bits } else { 64 };
        match element_bits {
            0..=8 => FieldBank::U8(TypedBank::new(field, options)),
            9..=16 => FieldBank::U16(TypedBank::new(field, options)),
            17..=32 => FieldBank::U32(TypedBank::new(field, options)),
            _ => FieldBank::U64(TypedBank::new(field, options)),
        }
    }

    /// Width in bits of the table element this bank stores.
    pub fn element_bits(&self) -> u32 {
        match self {
            FieldBank::U8(_) => 8,
            FieldBank::U16(_) => 16,
            FieldBank::U32(_) => 32,
            FieldBank::U64(_) => 64,
        }
    }

    /// Number of predictions per record; predictor codes are
    /// `0..n_predictions` and `n_predictions` is the miss code.
    pub fn n_predictions(&self) -> u32 {
        dispatch!(self, b => b.n_predictions)
    }

    /// The field-width mask applied to every value.
    pub fn width_mask(&self) -> u64 {
        dispatch!(self, b => b.mask_u64)
    }

    /// Finds the first prediction slot matching `value`, evaluating slots
    /// lazily in code order — the engine analogue of the generated code's
    /// if/else-if chain. Returns the slot code, or `n_predictions` (the
    /// miss code) when nothing matches.
    pub fn find_code(&self, pc: u64, value: u64) -> u8 {
        dispatch!(self, b => {
            if value & b.mask_u64 != value {
                // Every slot holds a masked value, so an over-wide value
                // can only miss. (The columnar matcher relies on masked
                // inputs for its stride arithmetic.)
                return b.n_predictions as u8;
            }
            b.find_code_in_line(b.line(pc), b.narrow(value))
        })
    }

    /// The predicted value for `code`, or `None` for the miss code —
    /// the lazy decompression path (one slot, not all of them).
    pub fn value_for_code(&self, pc: u64, code: u8) -> Option<u64> {
        dispatch!(self, b => b.value_for_code(pc, code))
    }

    /// Appends all predictions for the record whose PC is `pc` to `out`,
    /// in predictor-code order.
    pub fn predict_into(&self, pc: u64, out: &mut Vec<u64>) {
        dispatch!(self, b => b.predict_into(pc, out))
    }

    /// Updates every table with the actual field value.
    pub fn update(&mut self, pc: u64, actual: u64) {
        dispatch!(self, b => {
            let line = b.line(pc);
            b.update_line(line, b.narrow(actual));
        })
    }

    /// Models a whole column of values in one pass: for each record,
    /// finds the predictor code of `values[i]` under `pcs[i]`, appends it
    /// to `codes_out`, appends the masked value to `misses_out` when no
    /// slot matched, and updates the tables.
    ///
    /// Byte-for-byte equivalent to calling [`Self::find_code`] and
    /// [`Self::update`] per record, but with the line resolved once, the
    /// value masked once, the per-slot `Source` dispatch hoisted into one
    /// per-predictor search, and — since the element dispatch happens
    /// here, once — the whole loop monomorphized at the field's storage
    /// width, keeping this bank's tables hot and narrow for the whole
    /// column.
    ///
    /// For the PC field itself, pass the same column as both `pcs` and
    /// `values`.
    ///
    /// # Panics
    ///
    /// Panics if `pcs` and `values` differ in length.
    pub fn model_column(
        &mut self,
        pcs: &[u64],
        values: &[u64],
        codes_out: &mut Vec<u8>,
        misses_out: &mut Vec<u64>,
    ) {
        dispatch!(self, b => b.model_column(pcs, values, codes_out, misses_out))
    }

    /// Replays a whole column: for each code, reconstructs the field
    /// value — a prediction slot for codes below the miss code, the next
    /// entry of `misses` for the miss code — appends it to `out`, and
    /// updates the tables. The inverse of [`Self::model_column`], and
    /// monomorphized the same way.
    ///
    /// `pcs` carries the already-decoded PC column; pass `None` for the
    /// PC field itself, whose L1 size is one (the specification
    /// validator guarantees it), so its line is always zero and the
    /// not-yet-known PC cannot matter.
    ///
    /// Miss values are masked on the way in, mirroring the record-major
    /// replay loop this replaces.
    ///
    /// # Errors
    ///
    /// Fails on codes beyond the miss code, on a miss stream that runs
    /// dry, and on miss values left over after the last record — the
    /// trailing-garbage hardening the container format requires.
    ///
    /// # Panics
    ///
    /// Panics if `pcs` is `Some` but shorter than `codes`.
    pub fn replay_column(
        &mut self,
        pcs: Option<&[u64]>,
        codes: &[u8],
        misses: &[u64],
        out: &mut Vec<u64>,
    ) -> Result<(), ReplayError> {
        dispatch!(self, b => b.replay_column(pcs, codes, misses, out))
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        dispatch!(self, b => b.memory_bytes())
    }

    /// Bytes held by value tables alone (last-value, (D)FCM second-level,
    /// stride) — the storage minimal element types shrink; excludes the
    /// width-independent first-level hash state.
    pub fn table_bytes(&self) -> usize {
        dispatch!(self, b => b.table_bytes())
    }

    /// Per-table occupancy summaries: the shared first-level line space,
    /// then each (D)FCM second-level table in predictor order. Counters
    /// accumulate across every update this bank has seen.
    pub fn occupancy(&self) -> Vec<TableOccupancy> {
        dispatch!(self, b => b.occupancy())
    }

    /// Serializes this bank's complete predictor state — every table and
    /// first-level hash slot — into a versioned byte encoding. A bank
    /// built for the same field under the same options and handed the
    /// snapshot via [`Self::restore`] continues modeling or replaying
    /// exactly where this one stands.
    ///
    /// Layout: `[SNAPSHOT_VERSION, element_bits]` then the sparse state
    /// body (see `TypedBank::snapshot_into`). The encoding skips
    /// never-touched table lines via the occupancy bitmaps, so the length
    /// grows with the touched working set, not the configured table
    /// sizes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = vec![SNAPSHOT_VERSION, self.element_bits() as u8];
        dispatch!(self, b => b.snapshot_into(&mut out));
        out
    }

    /// Restores state previously captured by [`Self::snapshot`] on an
    /// identically configured bank.
    ///
    /// # Errors
    ///
    /// Fails on an unknown version byte, an element-width mismatch, a
    /// body whose length does not match this bank's state, or fast-mode
    /// hashes indexing outside their tables. Values are re-masked on the
    /// way in, so a corrupted-but-well-formed snapshot yields wrong
    /// output, never a panic.
    pub fn restore(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let [version, element, body @ ..] = snapshot else {
            return Err(SnapshotError::Length);
        };
        if *version != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion { found: *version });
        }
        if u32::from(*element) != self.element_bits() {
            return Err(SnapshotError::WrongElement {
                found: *element,
                expected: self.element_bits() as u8,
            });
        }
        dispatch!(self, b => b.restore_from(body))
    }

    /// Test hook: forces the planned (two-pass / pipelined) modeling and
    /// replay schedules on or off regardless of table size, so both code
    /// paths can be exercised against each other on tables small enough
    /// for unit tests. Production banks pick the schedule from the
    /// hash-indexed table footprint at construction.
    #[doc(hidden)]
    pub fn force_plan(&mut self, on: bool) {
        dispatch!(self, b => b.plan = on)
    }
}

/// Predictor banks for every field of a specification, in declaration
/// order, plus the field processing order (PC first, as the paper
/// requires so the PC can index the other fields' tables).
#[derive(Debug)]
pub struct SpecBanks {
    banks: Vec<FieldBank>,
    order: Vec<usize>,
    pc_index: usize,
}

impl SpecBanks {
    /// Builds banks for every field of `spec`.
    pub fn new(spec: &TraceSpec, options: PredictorOptions) -> Self {
        let banks = spec.fields.iter().map(|f| FieldBank::new(f, options)).collect();
        let pc_index = spec.pc_index();
        let mut order = vec![pc_index];
        order.extend((0..spec.fields.len()).filter(|&i| i != pc_index));
        Self { banks, order, pc_index }
    }

    /// Field indices in processing order (the PC field first).
    pub fn processing_order(&self) -> &[usize] {
        &self.order
    }

    /// Index of the PC field.
    pub fn pc_index(&self) -> usize {
        self.pc_index
    }

    /// The bank for field `i` (declaration order).
    pub fn bank(&self, i: usize) -> &FieldBank {
        &self.banks[i]
    }

    /// Mutable access to the bank for field `i`.
    pub fn bank_mut(&mut self, i: usize) -> &mut FieldBank {
        &mut self.banks[i]
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.banks.len()
    }

    /// Whether there are no fields (never true for validated specs).
    pub fn is_empty(&self) -> bool {
        self.banks.is_empty()
    }

    /// Total memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.banks.iter().map(FieldBank::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcgen_spec::{parse, presets};

    fn field_bank(src: &str, options: PredictorOptions) -> FieldBank {
        let spec = parse(src).unwrap();
        FieldBank::new(&spec.fields[0], options)
    }

    #[test]
    fn lv_predicts_recent_values() {
        let mut bank = field_bank(
            "TCgen Trace Specification;\n64-Bit Field 1 = {: LV[3]};\nPC = Field 1;",
            PredictorOptions::default(),
        );
        for v in [10u64, 20, 30] {
            bank.update(0, v);
        }
        let mut preds = Vec::new();
        bank.predict_into(0, &mut preds);
        assert_eq!(preds, vec![30, 20, 10]);
    }

    #[test]
    fn dfcm_predicts_strides_never_seen_values() {
        // A pure stride sequence: after warmup, DFCM predicts values it
        // has never observed (the paper's key DFCM advantage).
        let mut bank = field_bank(
            "TCgen Trace Specification;\n64-Bit Field 1 = {L2 = 256: DFCM1[1]};\nPC = Field 1;",
            PredictorOptions::default(),
        );
        let mut hits = 0;
        for i in 0..100u64 {
            let v = 0x1000 + i * 8;
            let mut preds = Vec::new();
            bank.predict_into(0, &mut preds);
            if i >= 3 {
                assert_eq!(preds[0], v, "stride miss at step {i}");
                hits += 1;
            }
            bank.update(0, v);
        }
        assert_eq!(hits, 97);
    }

    #[test]
    fn element_width_follows_field_width() {
        for (bits, expected) in [(8u32, 8u32), (16, 16), (32, 32), (64, 64)] {
            let src = format!(
                "TCgen Trace Specification;\n{bits}-Bit Field 1 = {{: LV[1]}};\nPC = Field 1;"
            );
            let bank = field_bank(&src, PredictorOptions::default());
            assert_eq!(bank.element_bits(), expected, "{bits}-bit field");
            let wide = field_bank(
                &src,
                PredictorOptions { minimal_elements: false, ..Default::default() },
            );
            assert_eq!(wide.element_bits(), 64, "{bits}-bit field, minimization off");
        }
    }

    /// The tentpole invariant at the unit level: a narrow bank and the
    /// deoptimized u64 bank emit identical codes and misses.
    #[test]
    fn minimal_elements_do_not_change_streams() {
        let spec = parse(
            "TCgen Trace Specification;\n\
             8-Bit Field 1 = {: LV[1]};\n\
             16-Bit Field 2 = {L1 = 16, L2 = 256: DFCM2[2], FCM1[2], ST[2], LV[2]};\n\
             PC = Field 1;",
        )
        .unwrap();
        let minimal = PredictorOptions::default();
        let wide = PredictorOptions { minimal_elements: false, ..minimal };
        let mut x = 0x2468_ace0_1357_9bdfu64;
        let mut pcs = Vec::new();
        let mut vals = Vec::new();
        for i in 0..4_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            pcs.push(x >> 40);
            vals.push(if i % 3 == 0 { x >> 13 } else { i.wrapping_mul(12) });
        }
        for field in &spec.fields {
            let mut a = FieldBank::new(field, minimal);
            let mut b = FieldBank::new(field, wide);
            assert!(a.table_bytes() < b.table_bytes(), "narrow tables must be smaller");
            let (mut ca, mut ma) = (Vec::new(), Vec::new());
            let (mut cb, mut mb) = (Vec::new(), Vec::new());
            a.model_column(&pcs, &vals, &mut ca, &mut ma);
            b.model_column(&pcs, &vals, &mut cb, &mut mb);
            assert_eq!(ca, cb, "codes diverge on {}-bit field", field.bits);
            assert_eq!(ma, mb, "misses diverge on {}-bit field", field.bits);
            let mut ra = FieldBank::new(field, minimal);
            let mut out = Vec::new();
            ra.replay_column(Some(&pcs), &ca, &ma, &mut out).unwrap();
            let masked: Vec<u64> = vals.iter().map(|&v| v & a.width_mask()).collect();
            assert_eq!(out, masked, "narrow replay diverges on {}-bit field", field.bits);
        }
    }

    #[test]
    fn shared_and_private_tables_predict_identically() {
        let spec = parse(presets::TCGEN_A).unwrap();
        let shared = PredictorOptions::default();
        let private = PredictorOptions { shared_tables: false, ..shared };
        let mut a = FieldBank::new(&spec.fields[1], shared);
        let mut b = FieldBank::new(&spec.fields[1], private);
        let mut x = 0xabcdef12345u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = (x >> 5) & 0xffff;
            let value = if i % 3 == 0 { x } else { i * 16 };
            let mut pa = Vec::new();
            let mut pb = Vec::new();
            a.predict_into(pc, &mut pa);
            b.predict_into(pc, &mut pb);
            assert_eq!(pa, pb, "divergence at step {i}");
            a.update(pc, value);
            b.update(pc, value);
        }
        assert!(b.memory_bytes() > a.memory_bytes(), "sharing must save memory");
    }

    #[test]
    fn width_masking_applies() {
        let mut bank = field_bank(
            "TCgen Trace Specification;\n8-Bit Field 1 = {: LV[1]};\nPC = Field 1;",
            PredictorOptions::default(),
        );
        bank.update(0, 0x1234); // only 0x34 fits in 8 bits
        let mut preds = Vec::new();
        bank.predict_into(0, &mut preds);
        assert_eq!(preds, vec![0x34]);
    }

    #[test]
    fn spec_banks_put_pc_first() {
        let src = "TCgen Trace Specification;\n\
                   64-Bit Field 1 = {: LV[1]};\n\
                   32-Bit Field 2 = {: LV[1]};\n\
                   PC = Field 2;";
        let spec = parse(src).unwrap();
        let banks = SpecBanks::new(&spec, PredictorOptions::default());
        assert_eq!(banks.processing_order(), &[1, 0]);
        assert_eq!(banks.pc_index(), 1);
        assert_eq!(banks.len(), 2);
    }

    #[test]
    fn tcgen_a_prediction_counts() {
        let spec = parse(presets::TCGEN_A).unwrap();
        let banks = SpecBanks::new(&spec, PredictorOptions::default());
        assert_eq!(banks.bank(0).n_predictions(), 4);
        assert_eq!(banks.bank(1).n_predictions(), 10);
    }

    #[test]
    fn occupancy_tracks_touched_lines() {
        let spec = parse(
            "TCgen Trace Specification;\n\
             32-Bit Field 1 = {: LV[1]};\n\
             64-Bit Field 2 = {L1 = 64, L2 = 256: DFCM2[1], FCM1[1], LV[1]};\n\
             PC = Field 1;",
        )
        .unwrap();
        let mut bank = FieldBank::new(&spec.fields[1], PredictorOptions::default());
        let occ = bank.occupancy();
        // L1, FCM1 L2, DFCM2 L2 — in that order.
        assert_eq!(occ.len(), 3);
        assert_eq!(occ[0].table, OccTable::L1);
        assert_eq!(occ[0].lines_total, 64);
        assert_eq!(occ[1].table, OccTable::FcmL2 { order: 1 });
        assert_eq!(occ[1].lines_total, 256);
        assert_eq!(occ[2].table, OccTable::DfcmL2 { order: 2 });
        assert_eq!(occ[2].lines_total, 512, "DFCM2 scales L2 by 2^(order-1)");
        assert!(occ.iter().all(|t| t.lines_written == 0), "fresh bank is empty");

        // Three distinct PCs touch exactly three L1 lines, however often.
        for step in 0..300u64 {
            bank.update(step % 3, step * 8);
        }
        let occ = bank.occupancy();
        assert_eq!(occ[0].lines_written, 3);
        assert!(occ[1].lines_written > 0 && occ[1].lines_written <= 300);
        assert!(occ[2].lines_written > 0 && occ[2].lines_written <= 300);
    }

    #[test]
    fn always_policy_differs_from_smart_on_repeats() {
        let src = "TCgen Trace Specification;\n64-Bit Field 1 = {: LV[2]};\nPC = Field 1;";
        let mut smart = field_bank(src, PredictorOptions::default());
        let mut always = field_bank(
            src,
            PredictorOptions { policy: UpdatePolicy::Always, ..Default::default() },
        );
        // Sequence 7,7,8: smart keeps [8,7]; always ends with [8,7] too
        // but after 7,7 smart holds [7,0] vs always [7,7].
        for bank in [&mut smart, &mut always] {
            bank.update(0, 7);
            bank.update(0, 7);
        }
        let mut ps = Vec::new();
        let mut pa = Vec::new();
        smart.predict_into(0, &mut ps);
        always.predict_into(0, &mut pa);
        assert_eq!(ps, vec![7, 0]);
        assert_eq!(pa, vec![7, 7]);
    }
}

#[cfg(test)]
mod st_tests {
    use super::*;
    use tcgen_spec::parse;

    fn st_bank(src: &str) -> FieldBank {
        let spec = parse(src).unwrap();
        FieldBank::new(&spec.fields[0], PredictorOptions::default())
    }

    #[test]
    fn st_predicts_multiple_stride_steps() {
        let mut bank =
            st_bank("TCgen Trace Specification;\n64-Bit Field 1 = {: ST[3]};\nPC = Field 1;");
        for v in [100u64, 108, 116] {
            bank.update(0, v);
        }
        let mut preds = Vec::new();
        bank.predict_into(0, &mut preds);
        assert_eq!(preds, vec![124, 132, 140], "last + 1..3 strides");
    }

    #[test]
    fn st_ignores_one_off_jumps() {
        let mut bank =
            st_bank("TCgen Trace Specification;\n64-Bit Field 1 = {: ST[1]};\nPC = Field 1;");
        for v in [0u64, 8, 16, 24] {
            bank.update(0, v);
        }
        bank.update(0, 5000); // a single jump
        let mut preds = Vec::new();
        bank.predict_into(0, &mut preds);
        // The confirmed stride is still 8, applied from the new last value.
        assert_eq!(preds, vec![5008]);
    }

    #[test]
    fn st_shares_the_last_value_table_with_lv() {
        let shared = st_bank(
            "TCgen Trace Specification;\n64-Bit Field 1 = {: ST[1], LV[2]};\nPC = Field 1;",
        );
        let spec = parse(
            "TCgen Trace Specification;\n64-Bit Field 1 = {: ST[1], LV[2]};\nPC = Field 1;",
        )
        .unwrap();
        let private = FieldBank::new(
            &spec.fields[0],
            PredictorOptions { shared_tables: false, ..Default::default() },
        );
        assert!(shared.memory_bytes() < private.memory_bytes());
    }

    #[test]
    fn st_shared_and_private_predict_identically() {
        let src = "TCgen Trace Specification;\n\
                   32-Bit Field 1 = {: LV[1]};\n\
                   64-Bit Field 2 = {L1 = 4, L2 = 64: ST[2], DFCM1[1], LV[1]};\nPC = Field 1;";
        let spec = parse(src).unwrap();
        let mut a = FieldBank::new(&spec.fields[1], PredictorOptions::default());
        let mut b = FieldBank::new(
            &spec.fields[1],
            PredictorOptions { shared_tables: false, ..Default::default() },
        );
        let mut x = 777u64;
        for i in 0..400u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = x >> 60;
            let value = if i % 4 == 0 { x >> 30 } else { i * 24 };
            let mut pa = Vec::new();
            let mut pb = Vec::new();
            a.predict_into(pc, &mut pa);
            b.predict_into(pc, &mut pb);
            assert_eq!(pa, pb, "divergence at step {i}");
            a.update(pc, value);
            b.update(pc, value);
        }
    }
}

#[cfg(test)]
mod columnar_tests {
    use super::*;
    use tcgen_spec::{parse, presets};

    fn columns(n: usize) -> (Vec<u64>, Vec<u64>) {
        let mut x = 0x0123_4567_89ab_cdefu64;
        let mut pcs = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        for i in 0..n as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            pcs.push(x >> 44);
            vals.push(if i % 3 == 0 { x >> 8 } else { i * 8 + 5 });
        }
        (pcs, vals)
    }

    fn all_option_sets() -> Vec<PredictorOptions> {
        let d = PredictorOptions::default();
        vec![
            d,
            PredictorOptions { policy: UpdatePolicy::Always, ..d },
            PredictorOptions { fast_hash: false, ..d },
            PredictorOptions { shared_tables: false, ..d },
            PredictorOptions { adaptive_shift: false, ..d },
            PredictorOptions { minimal_elements: false, ..d },
        ]
    }

    /// The tentpole equivalence: one `model_column` call must produce
    /// exactly the codes and misses of the per-record find/update loop,
    /// under every ablation option set.
    #[test]
    fn model_column_matches_record_major_loop() {
        let st_spec = parse(
            "TCgen Trace Specification;\n\
             32-Bit Field 1 = {: LV[1]};\n\
             64-Bit Field 2 = {L1 = 16, L2 = 256: ST[3], DFCM1[1], LV[2]};\nPC = Field 1;",
        )
        .unwrap();
        let spec = parse(presets::TCGEN_B).unwrap();
        let (pcs, vals) = columns(3_000);
        for field in spec.fields.iter().chain(&st_spec.fields) {
            for options in all_option_sets() {
                let mut reference = FieldBank::new(field, options);
                let mut columnar = FieldBank::new(field, options);
                let mut want_codes = Vec::new();
                let mut want_misses = Vec::new();
                for (&pc, &raw) in pcs.iter().zip(&vals) {
                    let value = raw & reference.width_mask();
                    let code = reference.find_code(pc, value);
                    want_codes.push(code);
                    if u32::from(code) == reference.n_predictions() {
                        want_misses.push(value);
                    }
                    reference.update(pc, value);
                }
                let mut codes = Vec::new();
                let mut misses = Vec::new();
                columnar.model_column(&pcs, &vals, &mut codes, &mut misses);
                assert_eq!(codes, want_codes, "{options:?}");
                assert_eq!(misses, want_misses, "{options:?}");
            }
        }
    }

    #[test]
    fn replay_column_inverts_model_column() {
        let spec = parse(presets::TCGEN_B).unwrap();
        let (pcs, vals) = columns(2_000);
        for field in &spec.fields {
            let options = PredictorOptions::default();
            let mut fwd = FieldBank::new(field, options);
            let mut codes = Vec::new();
            let mut misses = Vec::new();
            fwd.model_column(&pcs, &vals, &mut codes, &mut misses);
            let mut bwd = FieldBank::new(field, options);
            let mut out = Vec::new();
            bwd.replay_column(Some(&pcs), &codes, &misses, &mut out).unwrap();
            let masked: Vec<u64> = vals.iter().map(|&v| v & fwd.width_mask()).collect();
            assert_eq!(out, masked);
        }
    }

    /// The PC field replays without a PC column: its L1 size is one, so
    /// modeling with the raw column and replaying with `None` agree —
    /// on both the one-pass and the pipelined replay schedule.
    #[test]
    fn pc_field_replays_without_pc_column() {
        let spec = parse(presets::TCGEN_A).unwrap();
        let pc_field = &spec.fields[spec.pc_index()];
        let (_, vals) = columns(1_500);
        let options = PredictorOptions::default();
        let mut fwd = FieldBank::new(pc_field, options);
        let mut codes = Vec::new();
        let mut misses = Vec::new();
        fwd.model_column(&vals, &vals, &mut codes, &mut misses);
        let masked: Vec<u64> = vals.iter().map(|&v| v & fwd.width_mask()).collect();
        for plan in [false, true] {
            let mut bwd = FieldBank::new(pc_field, options);
            bwd.force_plan(plan);
            let mut out = Vec::new();
            bwd.replay_column(None, &codes, &misses, &mut out).unwrap();
            assert_eq!(out, masked, "plan = {plan}");
        }
    }

    /// The pipelined replay schedule is invisible: identical output and
    /// identical final predictor state (snapshot bytes) to the one-pass
    /// loop, for every predictor kind and ablation option set. Unit-test
    /// tables are far below the planning threshold, so both paths are
    /// forced explicitly.
    #[test]
    fn planned_replay_matches_one_pass_replay() {
        let st_spec = parse(
            "TCgen Trace Specification;\n\
             32-Bit Field 1 = {: LV[1]};\n\
             64-Bit Field 2 = {L1 = 16, L2 = 256: ST[3], DFCM1[1], LV[2]};\nPC = Field 1;",
        )
        .unwrap();
        let spec = parse(presets::TCGEN_B).unwrap();
        let (pcs, vals) = columns(3_000);
        for field in spec.fields.iter().chain(&st_spec.fields) {
            for options in all_option_sets() {
                let mut fwd = FieldBank::new(field, options);
                let mut codes = Vec::new();
                let mut misses = Vec::new();
                fwd.model_column(&pcs, &vals, &mut codes, &mut misses);
                let mut one_pass = FieldBank::new(field, options);
                one_pass.force_plan(false);
                let mut a = Vec::new();
                one_pass.replay_column(Some(&pcs), &codes, &misses, &mut a).unwrap();
                let mut pipelined = FieldBank::new(field, options);
                pipelined.force_plan(true);
                let mut b = Vec::new();
                pipelined.replay_column(Some(&pcs), &codes, &misses, &mut b).unwrap();
                assert_eq!(a, b, "outputs diverge: {}-bit {options:?}", field.bits);
                assert_eq!(
                    one_pass.snapshot(),
                    pipelined.snapshot(),
                    "final state diverges: {}-bit {options:?}",
                    field.bits
                );
            }
        }
    }

    #[test]
    fn replay_column_rejects_corrupt_streams() {
        let spec = parse(presets::TCGEN_A).unwrap();
        let field = &spec.fields[1];
        let (pcs, vals) = columns(300);
        let options = PredictorOptions::default();
        let mut fwd = FieldBank::new(field, options);
        let mut codes = Vec::new();
        let mut misses = Vec::new();
        fwd.model_column(&pcs, &vals, &mut codes, &mut misses);
        assert!(!misses.is_empty(), "test needs at least one miss");

        // A code beyond the miss code.
        let mut bad = codes.clone();
        bad[7] = fwd.n_predictions() as u8 + 1;
        let mut bank = FieldBank::new(field, options);
        assert_eq!(
            bank.replay_column(Some(&pcs), &bad, &misses, &mut Vec::new()),
            Err(ReplayError::CodeOutOfRange { record: 7, code: fwd.n_predictions() as u8 + 1 })
        );

        // A miss stream that runs dry.
        let mut bank = FieldBank::new(field, options);
        let err = bank
            .replay_column(Some(&pcs), &codes, &misses[..misses.len() - 1], &mut Vec::new())
            .unwrap_err();
        assert!(matches!(err, ReplayError::MissingValue { .. }));

        // Leftover miss values.
        let mut extra = misses.clone();
        extra.push(42);
        let mut bank = FieldBank::new(field, options);
        assert_eq!(
            bank.replay_column(Some(&pcs), &codes, &extra, &mut Vec::new()),
            Err(ReplayError::TrailingValues { left: 1 })
        );
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;
    use tcgen_spec::parse;

    fn columns(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut x = seed;
        let mut pcs = Vec::with_capacity(n);
        let mut vals = Vec::with_capacity(n);
        for i in 0..n as u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            pcs.push(x >> 44);
            vals.push(if i % 3 == 0 { x >> 8 } else { i * 8 + 5 });
        }
        (pcs, vals)
    }

    /// Fields covering every element width and every predictor kind,
    /// alone and composed (declared as Field 2 so the L1 sizes are legal;
    /// the PC field itself has to keep L1 = 1).
    fn snapshot_specs() -> Vec<tcgen_spec::TraceSpec> {
        [
            "8-Bit Field 2 = {L1 = 16, L2 = 64: FCM2[2], DFCM1[1], ST[2], LV[2]};",
            "16-Bit Field 2 = {L1 = 4, L2 = 128: DFCM3[2], LV[1]};",
            "32-Bit Field 2 = {L1 = 64, L2 = 256: FCM1[1], FCM3[2], LV[3]};",
            "64-Bit Field 2 = {L1 = 16, L2 = 256: DFCM2[2], FCM2[1], ST[3], LV[2]};",
            "64-Bit Field 2 = {: LV[4]};",
            "32-Bit Field 2 = {: ST[2], LV[1]};",
        ]
        .iter()
        .map(|field| {
            parse(&format!(
                "TCgen Trace Specification;\n32-Bit Field 1 = {{: LV[1]}};\n{field}\n\
                 PC = Field 1;"
            ))
            .unwrap()
        })
        .collect()
    }

    fn snapshot_option_sets() -> Vec<PredictorOptions> {
        let d = PredictorOptions::default();
        vec![
            d,
            PredictorOptions { fast_hash: false, ..d },
            PredictorOptions { shared_tables: false, ..d },
            PredictorOptions { minimal_elements: false, ..d },
            PredictorOptions { policy: UpdatePolicy::Always, ..d },
        ]
    }

    /// The checkpoint invariant: model N records, snapshot, restore into
    /// a fresh bank — and both modeling and replay continue byte-for-byte
    /// identically to the uninterrupted bank, for every element width,
    /// predictor kind, and option set.
    #[test]
    fn snapshot_restore_continues_identically() {
        let (pcs, vals) = columns(2_400, 0x0123_4567_89ab_cdef);
        let split = 1_100;
        for spec in snapshot_specs() {
            let field = &spec.fields[1];
            for options in snapshot_option_sets() {
                // Model the first half, snapshot, and keep modeling.
                let mut live = FieldBank::new(field, options);
                let (mut c1, mut m1) = (Vec::new(), Vec::new());
                live.model_column(&pcs[..split], &vals[..split], &mut c1, &mut m1);
                let snap = live.snapshot();
                let (mut live_codes, mut live_misses) = (Vec::new(), Vec::new());
                live.model_column(
                    &pcs[split..],
                    &vals[split..],
                    &mut live_codes,
                    &mut live_misses,
                );

                // A restored bank models the second half identically.
                let mut restored = FieldBank::new(field, options);
                restored.restore(&snap).expect("snapshot restores");
                let (mut codes, mut misses) = (Vec::new(), Vec::new());
                restored.model_column(&pcs[split..], &vals[split..], &mut codes, &mut misses);
                assert_eq!(codes, live_codes, "{}-bit {options:?}", field.bits);
                assert_eq!(misses, live_misses, "{}-bit {options:?}", field.bits);

                // And a restored bank replays the second half identically
                // to an uninterrupted replay of the whole column.
                let mut full = FieldBank::new(field, options);
                let mut full_out = Vec::new();
                let all_codes: Vec<u8> = c1.iter().chain(&live_codes).copied().collect();
                let all_misses: Vec<u64> = m1.iter().chain(&live_misses).copied().collect();
                full.replay_column(Some(&pcs), &all_codes, &all_misses, &mut full_out)
                    .expect("full replay");
                let mut resumed = FieldBank::new(field, options);
                resumed.restore(&snap).expect("snapshot restores for replay");
                let mut tail = Vec::new();
                resumed
                    .replay_column(Some(&pcs[split..]), &codes, &misses, &mut tail)
                    .expect("resumed replay");
                assert_eq!(tail, full_out[split..], "{}-bit {options:?}", field.bits);
            }
        }
    }

    /// The round-trip is exact — restore(snapshot()) reproduces the
    /// identical bytes, touched lines and occupancy included — and the
    /// sparse encoding earns its keep: a fresh bank's snapshot is just
    /// headers and empty bitmaps, far below the table footprint, and a
    /// lightly-used bank stays below the dense size.
    #[test]
    fn snapshots_roundtrip_bytewise() {
        let (pcs, vals) = columns(800, 777);
        for spec in snapshot_specs() {
            let field = &spec.fields[1];
            let options = PredictorOptions::default();
            let mut bank = FieldBank::new(field, options);
            let empty = bank.snapshot();
            assert!(
                empty.len() < bank.memory_bytes() / 4 + 64,
                "an untouched bank must snapshot near-empty ({} bytes)",
                empty.len()
            );
            let mut fresh = FieldBank::new(field, options);
            fresh.restore(&empty).unwrap();
            assert_eq!(fresh.snapshot(), empty);
            bank.model_column(&pcs, &vals, &mut Vec::new(), &mut Vec::new());
            let snap = bank.snapshot();
            assert!(snap.len() > empty.len(), "touched lines must appear in the snapshot");
            // Restoring over a *used* bank must also be exact: stale
            // lines the snapshot does not mention return to zero.
            let (pcs2, vals2) = columns(800, 31337);
            let mut other = FieldBank::new(field, options);
            other.model_column(&pcs2, &vals2, &mut Vec::new(), &mut Vec::new());
            other.restore(&snap).unwrap();
            assert_eq!(other.snapshot(), snap);
        }
    }

    /// Malformed snapshots fail cleanly: bad version, wrong element
    /// width, truncation, padding, and forged out-of-range hashes.
    #[test]
    fn corrupt_snapshots_are_rejected() {
        let spec = parse(
            "TCgen Trace Specification;\n32-Bit Field 1 = {: LV[1]};\n\
             32-Bit Field 2 = {L1 = 4, L2 = 64: FCM2[1], LV[1]};\nPC = Field 1;",
        )
        .unwrap();
        let (pcs, vals) = columns(300, 99);
        let mut bank = FieldBank::new(&spec.fields[1], PredictorOptions::default());
        bank.model_column(&pcs, &vals, &mut Vec::new(), &mut Vec::new());
        let snap = bank.snapshot();

        let mut target = FieldBank::new(&spec.fields[1], PredictorOptions::default());
        let mut bad = snap.clone();
        bad[0] = SNAPSHOT_VERSION + 1;
        assert_eq!(
            target.restore(&bad),
            Err(SnapshotError::BadVersion { found: SNAPSHOT_VERSION + 1 })
        );
        let mut bad = snap.clone();
        bad[1] = 64;
        assert_eq!(
            target.restore(&bad),
            Err(SnapshotError::WrongElement { found: 64, expected: 32 })
        );
        assert_eq!(target.restore(&snap[..snap.len() - 1]), Err(SnapshotError::Length));
        let mut bad = snap.clone();
        bad.push(0);
        assert_eq!(target.restore(&bad), Err(SnapshotError::Length));
        assert_eq!(target.restore(&[]), Err(SnapshotError::Length));

        // A stray occupancy bit past the last L1 line (L1 = 4, so bits
        // 4..63 of the bitmap's first word must stay clear).
        let mut bad = snap.clone();
        bad[2] |= 0x10;
        assert_eq!(target.restore(&bad), Err(SnapshotError::Occupancy));

        // Forge every hash slot out of range: L2 = 64 and order 2 give
        // 128 lines, so u32::MAX can never be a valid index.
        let touched = bank.occupancy()[0].lines_written as usize;
        assert!(touched > 0, "test needs at least one touched L1 line");
        let mut forged = snap.clone();
        // Hash state sits after the 2-byte header, the one-word L1 bitmap
        // (8 bytes), and the sparse LV table (touched lines × 1 × 4-byte
        // element); it holds touched lines × 2 orders × 4 bytes.
        let hash_start = 2 + 8 + touched * 4;
        for b in &mut forged[hash_start..hash_start + touched * 2 * 4] {
            *b = 0xff;
        }
        assert_eq!(target.restore(&forged), Err(SnapshotError::HashOutOfRange));
        // The failed restores never corrupted the bank into a panic.
        let mut out = Vec::new();
        bank.predict_into(pcs[0], &mut out);
    }
}

#[cfg(test)]
mod lazy_tests {
    use super::*;
    use tcgen_spec::{parse, presets};

    /// The lazy paths must agree exactly with the eager prediction list.
    #[test]
    fn find_code_and_value_for_code_match_predict_into() {
        let spec = parse(presets::TCGEN_B).unwrap();
        let mut bank = FieldBank::new(&spec.fields[1], PredictorOptions::default());
        let mut x = 0x1357_9bdfu64;
        for i in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = x >> 48;
            let value = if i % 3 == 0 { x >> 16 } else { i * 8 };
            let mut eager = Vec::new();
            bank.predict_into(pc, &mut eager);
            // value_for_code reproduces every slot.
            for (code, &expected) in eager.iter().enumerate() {
                assert_eq!(
                    bank.value_for_code(pc, code as u8),
                    Some(expected),
                    "slot {code} at step {i}"
                );
            }
            assert_eq!(bank.value_for_code(pc, eager.len() as u8), None);
            // find_code returns the first match, or the miss code.
            let lazy = bank.find_code(pc, value);
            let expected = eager.iter().position(|&p| p == value).unwrap_or(eager.len()) as u8;
            assert_eq!(lazy, expected, "step {i}");
            bank.update(pc, value);
        }
    }
}

//! Table-occupancy counters: how many lines of each predictor table were
//! ever written.
//!
//! The paper's usage feedback (§5) tells users which *predictors* are
//! idle; it says nothing about oversized *tables*. A first-level table of
//! 65536 lines indexed by a PC that only ever touches 300 of them wastes
//! memory without improving compression, and the same holds for
//! second-level (D)FCM tables whose hash indices cluster. These counters
//! close that gap: every bank records which lines it has written, and
//! [`TableOccupancy`] summaries flow into the engine's usage report and
//! the spec auto-tuner, which use them to shrink `L1`/`L2` parameters.

/// A write-once bitset over a table's lines plus a running count of set
/// bits: `mark` is one test-and-set per update, so keeping the counters
/// always-on costs a few instructions per table per record.
#[derive(Debug, Clone)]
pub struct Occupancy {
    bits: Vec<u64>,
    lines: u64,
    written: u64,
}

impl Occupancy {
    /// A zeroed occupancy map for a table of `lines` lines.
    pub fn new(lines: usize) -> Self {
        Self { bits: vec![0; lines.div_ceil(64)], lines: lines as u64, written: 0 }
    }

    /// Marks line `idx` as written.
    #[inline]
    pub fn mark(&mut self, idx: usize) {
        let word = &mut self.bits[idx >> 6];
        let bit = 1u64 << (idx & 63);
        if *word & bit == 0 {
            *word |= bit;
            self.written += 1;
        }
    }

    /// Number of distinct lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether line `idx` has ever been written.
    #[inline]
    pub fn is_set(&self, idx: usize) -> bool {
        self.bits[idx >> 6] & (1u64 << (idx & 63)) != 0
    }

    /// The raw bitmap words (64 lines per word, LSB-first), for snapshot
    /// serialization.
    pub fn words(&self) -> &[u64] {
        &self.bits
    }

    /// Replaces the bitmap with `words` (as produced by [`Self::words`])
    /// and recomputes the written count.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the word count does not match the table size or a
    /// bit beyond the last line is set.
    pub fn set_from_words(&mut self, words: &[u64]) -> Result<(), String> {
        if words.len() != self.bits.len() {
            return Err(format!(
                "occupancy bitmap holds {} words, expected {}",
                words.len(),
                self.bits.len()
            ));
        }
        let tail_lines = (self.lines % 64) as u32;
        if tail_lines != 0 {
            let stray = words[words.len() - 1] & !((1u64 << tail_lines) - 1);
            if stray != 0 {
                return Err(format!(
                    "occupancy bitmap marks lines past the last ({})",
                    self.lines
                ));
            }
        }
        self.bits.copy_from_slice(words);
        self.written = words.iter().map(|w| u64::from(w.count_ones())).sum();
        Ok(())
    }

    /// Calls `f` with the index of every written line, in ascending order.
    #[inline]
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.bits.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                f((wi << 6) | bit);
                w &= w - 1;
            }
        }
    }

    /// Total lines in the table.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// Which table of a field's predictor bank an occupancy summary is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccTable {
    /// The shared first-level structures (last-value, stride, and hash
    /// histories), all indexed by the same `PC mod L1` line.
    L1,
    /// The second-level table of an `FCMx` predictor of the given order.
    FcmL2 {
        /// Context order `x`.
        order: u32,
    },
    /// The second-level table of a `DFCMx` predictor of the given order.
    DfcmL2 {
        /// Context order `x`.
        order: u32,
    },
}

/// Occupancy summary of one predictor table: lines ever written versus
/// lines allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableOccupancy {
    /// The table this summary describes.
    pub table: OccTable,
    /// Distinct lines written at least once.
    pub lines_written: u64,
    /// Lines allocated.
    pub lines_total: u64,
}

impl TableOccupancy {
    /// Fraction of lines ever written (0 for an empty table).
    pub fn fill(&self) -> f64 {
        if self.lines_total == 0 {
            0.0
        } else {
            self.lines_written as f64 / self.lines_total as f64
        }
    }

    /// A short human-readable table name, e.g. `L1` or `DFCM3 L2`.
    pub fn label(&self) -> String {
        match self.table {
            OccTable::L1 => "L1".to_string(),
            OccTable::FcmL2 { order } => format!("FCM{order} L2"),
            OccTable::DfcmL2 { order } => format!("DFCM{order} L2"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marking_counts_distinct_lines_once() {
        let mut occ = Occupancy::new(200);
        assert_eq!(occ.written(), 0);
        assert_eq!(occ.lines(), 200);
        occ.mark(0);
        occ.mark(0);
        occ.mark(63);
        occ.mark(64);
        occ.mark(199);
        assert_eq!(occ.written(), 4);
    }

    #[test]
    fn single_line_table() {
        let mut occ = Occupancy::new(1);
        occ.mark(0);
        occ.mark(0);
        assert_eq!(occ.written(), 1);
        assert_eq!(occ.lines(), 1);
    }

    #[test]
    fn words_roundtrip_and_reject_stray_bits() {
        let mut occ = Occupancy::new(70);
        occ.mark(3);
        occ.mark(69);
        let words: Vec<u64> = occ.words().to_vec();
        let mut fresh = Occupancy::new(70);
        fresh.set_from_words(&words).unwrap();
        assert_eq!(fresh.written(), 2);
        assert!(fresh.is_set(3) && fresh.is_set(69) && !fresh.is_set(4));
        let mut set = Vec::new();
        fresh.for_each_set(|i| set.push(i));
        assert_eq!(set, vec![3, 69]);
        // Stray bit past line 69 (bit 6 of word 1) must be rejected.
        let mut bad = words.clone();
        bad[1] |= 1 << 7;
        assert!(fresh.set_from_words(&bad).is_err());
        // Wrong word count must be rejected.
        assert!(fresh.set_from_words(&words[..1]).is_err());
    }

    #[test]
    fn fill_and_labels() {
        let t = TableOccupancy { table: OccTable::L1, lines_written: 1, lines_total: 4 };
        assert!((t.fill() - 0.25).abs() < 1e-12);
        assert_eq!(t.label(), "L1");
        let f = TableOccupancy {
            table: OccTable::FcmL2 { order: 1 },
            lines_written: 0,
            lines_total: 0,
        };
        assert_eq!(f.fill(), 0.0);
        assert_eq!(f.label(), "FCM1 L2");
        let d = TableOccupancy {
            table: OccTable::DfcmL2 { order: 3 },
            lines_written: 2,
            lines_total: 8,
        };
        assert_eq!(d.label(), "DFCM3 L2");
    }
}

//! Flat value tables: `lines × height` slots of most-recent-first values.

use crate::element::TableElement;
use crate::policy::UpdatePolicy;

/// A table of `lines` lines, each holding `height` values ordered most
/// recent first. Backs last-value tables and (D)FCM second-level tables.
///
/// The element type `E` is the narrowest unsigned integer covering the
/// owning field's bit width (paper §4, minimal element types); see
/// [`crate::element`] for why narrowing never changes stored values.
#[derive(Debug, Clone)]
pub struct ValueTable<E: TableElement = u64> {
    values: Vec<E>,
    height: usize,
}

impl<E: TableElement> ValueTable<E> {
    /// Allocates a zero-initialized table.
    ///
    /// # Panics
    ///
    /// Panics if `lines` or `height` is zero.
    pub fn new(lines: usize, height: usize) -> Self {
        assert!(lines > 0 && height > 0, "table dimensions must be nonzero");
        Self { values: vec![E::default(); lines * height], height }
    }

    /// Values per line.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of lines.
    pub fn lines(&self) -> usize {
        self.values.len() / self.height
    }

    /// The values of `line`, most recent first.
    #[inline]
    pub fn line(&self, line: usize) -> &[E] {
        let start = line * self.height;
        &self.values[start..start + self.height]
    }

    /// First (most recent) entry of `line`.
    #[inline]
    pub fn first(&self, line: usize) -> E {
        self.values[line * self.height]
    }

    /// Applies the update `policy`: if the line is to be updated, the
    /// entries shift right one slot (dropping the oldest) and `value`
    /// enters at the front. Returns whether an update happened.
    #[inline]
    pub fn update(&mut self, line: usize, value: E, policy: UpdatePolicy) -> bool {
        let start = line * self.height;
        let slots = &mut self.values[start..start + self.height];
        if !policy.should_update(slots[0], value) {
            return false;
        }
        // Shift by hand: heights are tiny (1–4), so an explicit reverse
        // loop beats the `memmove` a `copy_within` would issue per line.
        for k in (1..slots.len()).rev() {
            slots[k] = slots[k - 1];
        }
        slots[0] = value;
        true
    }

    /// Hints the CPU to pull `line` into cache ahead of a probe; a no-op
    /// on architectures without a stable prefetch intrinsic.
    #[inline(always)]
    pub fn prefetch(&self, line: usize) {
        #[cfg(target_arch = "x86_64")]
        {
            let ptr = self.values.as_ptr().wrapping_add(line * self.height);
            // SAFETY: prefetch is a pure cache hint, valid for any address.
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    ptr.cast::<i8>(),
                    core::arch::x86_64::_MM_HINT_T0,
                )
            };
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = line;
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<E>()
    }

    /// All values, line-major — the serialization surface for checkpoint
    /// snapshots.
    pub fn values(&self) -> &[E] {
        &self.values
    }

    /// Mutable view of all values, line-major, for snapshot restore.
    pub fn values_mut(&mut self) -> &mut [E] {
        &mut self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_shifts_most_recent_first() {
        let mut t = ValueTable::<u64>::new(2, 3);
        t.update(0, 10, UpdatePolicy::Smart);
        t.update(0, 20, UpdatePolicy::Smart);
        t.update(0, 30, UpdatePolicy::Smart);
        assert_eq!(t.line(0), &[30, 20, 10]);
        assert_eq!(t.line(1), &[0, 0, 0], "other lines untouched");
    }

    #[test]
    fn smart_update_keeps_first_two_distinct() {
        let mut t = ValueTable::<u64>::new(1, 2);
        t.update(0, 5, UpdatePolicy::Smart);
        assert!(!t.update(0, 5, UpdatePolicy::Smart), "repeat is skipped");
        t.update(0, 6, UpdatePolicy::Smart);
        assert_eq!(t.line(0), &[6, 5]);
        t.update(0, 5, UpdatePolicy::Smart);
        assert_eq!(t.line(0), &[5, 6], "alternation retained losslessly");
    }

    #[test]
    fn always_update_retains_duplicates() {
        let mut t = ValueTable::<u64>::new(1, 2);
        t.update(0, 5, UpdatePolicy::Always);
        t.update(0, 5, UpdatePolicy::Always);
        assert_eq!(t.line(0), &[5, 5]);
    }

    #[test]
    fn height_one_lines() {
        let mut t = ValueTable::<u64>::new(4, 1);
        t.update(3, 9, UpdatePolicy::Smart);
        assert_eq!(t.first(3), 9);
        t.update(3, 9, UpdatePolicy::Always);
        assert_eq!(t.first(3), 9);
    }

    #[test]
    fn narrow_elements_shrink_footprint_not_behaviour() {
        let mut narrow = ValueTable::<u8>::new(4, 2);
        let mut wide = ValueTable::<u64>::new(4, 2);
        for v in [3u64, 3, 250, 7, 250] {
            narrow.update(1, v as u8, UpdatePolicy::Smart);
            wide.update(1, v, UpdatePolicy::Smart);
        }
        let widened: Vec<u64> = narrow.line(1).iter().map(|&v| u64::from(v)).collect();
        assert_eq!(widened, wide.line(1));
        assert_eq!(narrow.memory_bytes() * 8, wide.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_height_panics() {
        let _ = ValueTable::<u64>::new(4, 0);
    }
}

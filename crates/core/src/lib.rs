//! # tcgen-core
//!
//! The TCgen facade: one type, [`Tcgen`], that ties the whole system
//! together the way the paper's command-line tool does — parse a trace
//! specification, generate customized compressor source code (C or
//! Rust), and compress/decompress traces directly through the runtime
//! engine, with predictor-usage feedback.
//!
//! ```
//! use tcgen_core::Tcgen;
//!
//! let tcgen = Tcgen::from_spec(tcgen_core::TCGEN_A_SPEC)?;
//!
//! // 1. Generate a customized C compressor (the paper's output).
//! let c_source = tcgen.generate_c();
//! assert!(c_source.contains("int main"));
//!
//! // 2. Or compress in-process through the engine.
//! let mut trace = vec![0, 0, 0, 0];
//! for i in 0..1000u64 {
//!     trace.extend_from_slice(&(0x40_0000u32).to_le_bytes());
//!     trace.extend_from_slice(&(i * 8).to_le_bytes());
//! }
//! let packed = tcgen.compress(&trace)?;
//! assert!(packed.len() < trace.len() / 10);
//! assert_eq!(tcgen.decompress(&packed)?, trace);
//! # Ok::<(), tcgen_core::Error>(())
//! ```

use tcgen_codegen::PlanOptions;
use tcgen_engine::{Engine, UsageReport};
use tcgen_spec::TraceSpec;

// Re-exported so callers of [`Tcgen::with_options`] can name the options
// type without depending on the engine crate directly.
pub use tcgen_engine::EngineOptions;
// Re-exported so callers can select a post-compression backend (the
// CLI's `--profile`) without depending on the engine crate directly.
pub use tcgen_engine::Backend;
// Re-exported so callers of [`Tcgen::with_telemetry`] can build a
// recorder without depending on the telemetry crate directly.
pub use tcgen_engine::Recorder;

/// The paper's Figure 5 specification (TCgen(A) / the VPC3 format).
pub const TCGEN_A_SPEC: &str = tcgen_spec::presets::TCGEN_A;
/// The paper's Figure 9 specification (TCgen(B)).
pub const TCGEN_B_SPEC: &str = tcgen_spec::presets::TCGEN_B;

/// Errors from the facade: specification problems or engine failures.
#[derive(Debug)]
pub enum Error {
    /// The specification failed to parse or validate.
    Spec(tcgen_spec::SpecError),
    /// Compression or decompression failed.
    Engine(tcgen_engine::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Spec(e) => write!(f, "specification: {e}"),
            Error::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Spec(e) => Some(e),
            Error::Engine(e) => Some(e),
        }
    }
}

impl From<tcgen_spec::SpecError> for Error {
    fn from(e: tcgen_spec::SpecError) -> Self {
        Error::Spec(e)
    }
}

impl From<tcgen_engine::Error> for Error {
    fn from(e: tcgen_engine::Error) -> Self {
        Error::Engine(e)
    }
}

/// A configured TCgen instance for one trace format.
#[derive(Debug, Clone)]
pub struct Tcgen {
    engine: Engine,
}

impl Tcgen {
    /// Parses `spec_source` and configures TCgen with full optimizations.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Spec`] with a source position on parse errors or
    /// a description of the violated rule on validation errors.
    pub fn from_spec(spec_source: &str) -> Result<Self, Error> {
        Self::with_options(spec_source, EngineOptions::tcgen())
    }

    /// Parses `spec_source` and configures TCgen with explicit engine
    /// options (ablation presets, the VPC3 baseline, block sizes …).
    ///
    /// # Errors
    ///
    /// As for [`Tcgen::from_spec`].
    pub fn with_options(spec_source: &str, options: EngineOptions) -> Result<Self, Error> {
        let spec = tcgen_spec::parse(spec_source)?;
        Ok(Self { engine: Engine::new(spec, options) })
    }

    /// Attaches a telemetry recorder: every compression and
    /// decompression through this instance records per-stage spans and
    /// throughput counters into it. Purely observational — output bytes
    /// are identical with and without a recorder.
    #[must_use]
    pub fn with_telemetry(mut self, recorder: Recorder) -> Self {
        self.engine = self.engine.with_telemetry(recorder);
        self
    }

    /// The attached telemetry recorder, if any.
    pub fn telemetry(&self) -> Option<&Recorder> {
        self.engine.telemetry()
    }

    /// The parsed trace specification.
    pub fn spec(&self) -> &TraceSpec {
        self.engine.spec()
    }

    /// The specification in canonical form, with the prediction-count
    /// and table-size comments TCgen prints.
    pub fn canonical_spec(&self) -> String {
        tcgen_spec::canonical(self.engine.spec())
    }

    /// Generates the customized C compressor source for this format.
    pub fn generate_c(&self) -> String {
        tcgen_codegen::generate_c(self.engine.spec(), self.plan_options())
    }

    /// Generates the customized Rust compressor source for this format.
    pub fn generate_rust(&self) -> String {
        tcgen_codegen::generate_rust(self.engine.spec(), self.plan_options())
    }

    fn plan_options(&self) -> PlanOptions {
        let o = self.engine.options();
        PlanOptions {
            smart_update: o.predictor.policy == tcgen_predictors::UpdatePolicy::Smart,
            adaptive_shift: o.predictor.adaptive_shift,
            minimize_types: o.minimize_types,
        }
    }

    /// Compresses a raw trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Engine`] if the trace does not match the format.
    pub fn compress(&self, raw: &[u8]) -> Result<Vec<u8>, Error> {
        Ok(self.engine.compress(raw)?)
    }

    /// Compresses and returns the predictor-usage feedback alongside.
    ///
    /// # Errors
    ///
    /// As for [`Tcgen::compress`].
    pub fn compress_with_usage(&self, raw: &[u8]) -> Result<(Vec<u8>, UsageReport), Error> {
        Ok(self.engine.compress_with_usage(raw)?)
    }

    /// Decompresses a container produced by [`Tcgen::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Engine`] on damage or format mismatch.
    pub fn decompress(&self, packed: &[u8]) -> Result<Vec<u8>, Error> {
        Ok(self.engine.decompress(packed)?)
    }

    /// Access to the underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_end_to_end() {
        let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
        let mut trace = vec![1, 2, 3, 4];
        for i in 0..2_000u64 {
            trace.extend_from_slice(&(0x40_0000u32 + (i as u32 % 5) * 4).to_le_bytes());
            trace.extend_from_slice(&(0x8000 + i * 16).to_le_bytes());
        }
        let (packed, usage) = tcgen.compress_with_usage(&trace).unwrap();
        assert_eq!(tcgen.decompress(&packed).unwrap(), trace);
        assert!(usage.fields[1].hit_rate() > 0.8);
        assert!(tcgen.canonical_spec().contains("predictions"));
    }

    #[test]
    fn bad_spec_is_a_spec_error() {
        assert!(matches!(Tcgen::from_spec("nonsense"), Err(Error::Spec(_))));
    }

    #[test]
    fn vpc3_preset_via_facade() {
        let vpc3 = Tcgen::with_options(TCGEN_A_SPEC, EngineOptions::vpc3()).unwrap();
        let trace = vec![0, 0, 0, 0];
        let packed = vpc3.compress(&trace).unwrap();
        assert_eq!(vpc3.decompress(&packed).unwrap(), trace);
    }

    #[test]
    fn generated_sources_reflect_options() {
        let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
        assert!(tcgen.generate_c().contains("!= value) {"), "smart update emitted");
        let vpc3 = Tcgen::with_options(TCGEN_A_SPEC, EngineOptions::vpc3()).unwrap();
        let c = vpc3.generate_c();
        // Always-update: multi-entry lines shift without a guard.
        assert!(!c.contains("] != value) {"), "no smart-update guard for VPC3");
    }
}

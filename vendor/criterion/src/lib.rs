//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this crate implements
//! the benchmark-harness surface the workspace's benches use: groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! throughput annotation, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is deliberately simple — wall-clock mean over a
//! fixed sample count after a short warm-up — and results are printed as
//! `group/bench  time  throughput` lines.
//!
//! Like real criterion, a full measurement only runs when the binary is
//! invoked with `--bench` (as `cargo bench` does); under `cargo test`
//! every benchmark executes exactly once so benches stay cheap smoke
//! tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work attributed to a benchmark, for throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state (one batch per measurement).
    LargeInput,
    /// Fresh state for every single iteration.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { label: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes --bench; cargo test does not.
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Self { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 20 }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (test_mode, label) = (self.test_mode, name.to_string());
        run_one(test_mode, &label, None, 20, f);
        self
    }
}

/// A group of benchmarks sharing throughput and sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.test_mode, &label, self.throughput, self.sample_size, f);
        self
    }

    /// Benchmarks a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (drop also suffices; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures to drive the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` back-to-back for the sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` on fresh state from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let state = setup();
            let start = Instant::now();
            black_box(routine(state));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    if test_mode {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("bench {label}: ok (test mode)");
        return;
    }
    // Warm-up round, then the measured rounds.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let mut per_iter = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter.push(b.elapsed);
    }
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    let min = per_iter.iter().min().copied().unwrap_or_default();
    let max = per_iter.iter().max().copied().unwrap_or_default();
    let rate = throughput.map(|t| describe_rate(t, mean)).unwrap_or_default();
    println!(
        "bench {label}: mean {} (min {}, max {}){rate}",
        describe_duration(mean),
        describe_duration(min),
        describe_duration(max),
    );
}

fn describe_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn describe_rate(throughput: Throughput, mean: Duration) -> String {
    let secs = mean.as_secs_f64().max(1e-12);
    match throughput {
        Throughput::Bytes(n) => {
            format!(", {:.1} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
        }
        Throughput::Elements(n) => format!(", {:.2} Melem/s", n as f64 / secs / 1e6),
    }
}

/// Declares a group function that runs each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

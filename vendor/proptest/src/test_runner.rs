//! Deterministic test RNG, configuration, and failure type.

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self(message.into())
    }

    /// Real proptest's "reject this case" — treated as a failure here
    /// because this stand-in has no case filtering.
    pub fn reject(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64-based RNG seeded from the test's name, so every run of a
/// given test replays the identical case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from an arbitrary label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in label.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_give_distinct_reproducible_streams() {
        let mut a = TestRng::deterministic("alpha");
        let mut a2 = TestRng::deterministic("alpha");
        let mut b = TestRng::deterministic("beta");
        let xs: Vec<u64> = (0..50).map(|_| a.next()).collect();
        let xs2: Vec<u64> = (0..50).map(|_| a2.next()).collect();
        let ys: Vec<u64> = (0..50).map(|_| b.next()).collect();
        assert_eq!(xs, xs2);
        assert_ne!(xs, ys);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::deterministic("bound");
        for bound in [1u64, 2, 3, 7, 1000] {
            for _ in 0..500 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}

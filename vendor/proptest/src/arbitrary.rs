//! `any::<T>()` — whole-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the whole domain of `T` (`any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

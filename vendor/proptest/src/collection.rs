//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s of values from an element strategy, with a
/// length drawn uniformly from `len` per sample.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        assert!(self.len.start < self.len.end, "empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Vectors of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_stay_in_range() {
        let s = vec(any::<u8>(), 3..10);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            assert!((3..10).contains(&v.len()));
        }
    }
}

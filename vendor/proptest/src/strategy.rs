//! The [`Strategy`] trait and the combinators this workspace uses.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for producing values of one type from a seeded RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies can share a
    /// container (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between several strategies of one value type.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span + 1)) as $t
            }
        }
    )+};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals act as generators of arbitrary junk text.
///
/// Real proptest interprets the literal as a regular expression; the
/// tests in this workspace only use patterns of the `\PC{0,200}`
/// "arbitrary printable junk" shape, so this stand-in samples a string of
/// arbitrary non-NUL characters whose length is drawn from the `{lo,hi}`
/// suffix when present (default `{0,64}`).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_suffix(self).unwrap_or((0, 64));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| {
                // Bias toward ASCII so parsers see plausible near-misses,
                // with occasional multi-byte characters mixed in.
                match rng.below(8) {
                    0 => char::from_u32(0x00a1 + rng.next() as u32 % 0x2000)
                        .unwrap_or('\u{00bf}'),
                    _ => (0x20 + rng.below(0x5f) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_repeat_suffix(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern[open..].find('}')? + open;
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_unions_sample_in_bounds() {
        let mut rng = TestRng::deterministic("strategies");
        let s = (1u32..5, 0u64..=3, Just("x"));
        for _ in 0..1000 {
            let (a, b, c) = s.sample(&mut rng);
            assert!((1..5).contains(&a) && b <= 3 && c == "x");
        }
        let u = crate::prop_oneof![Just(1u8), Just(9u8)];
        for _ in 0..100 {
            assert!(matches!(u.sample(&mut rng), 1 | 9));
        }
    }

    #[test]
    fn string_pattern_length_suffix_is_respected() {
        let mut rng = TestRng::deterministic("strings");
        let s = "\\PC{0,200}";
        for _ in 0..200 {
            assert!(Strategy::sample(&s, &mut rng).chars().count() <= 200);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strat = (0u64..1 << 40, 0f64..1.0);
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this crate reimplements
//! the subset of proptest this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range/tuple/`Just`/union/collection strategies, `any`, the
//! `proptest!`, `prop_oneof!`, `prop_assert!` and `prop_assert_eq!`
//! macros, and a deterministic runner. There is **no shrinking**: a
//! failing case panics with the test name and case number, which together
//! with the deterministic per-test RNG makes every failure reproducible.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies for `bool`, mirroring `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type sampling both booleans uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest {}, case {}/{}: {}",
                        stringify!($name), __case + 1, __cfg.cases, __e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the current test case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current test case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Picks one of several strategies uniformly per sample.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

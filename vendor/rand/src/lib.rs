//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64, the same
//! generator the real crate uses on 64-bit targets) and the [`Rng`]
//! range/bool/ratio sampling helpers. Sampled *sequences* are not
//! guaranteed to match the real crate bit-for-bit — everything in this
//! workspace only relies on seeded determinism, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool
    where
        Self: Sized,
    {
        assert!(denominator > 0, "gen_ratio denominator must be positive");
        assert!(numerator <= denominator, "gen_ratio numerator above denominator");
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `lo..hi`; panics if the range is empty.
    fn sample_exclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `lo..=hi`; panics if the range is empty.
    fn sample_inclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self;
}

/// Range shapes accepted by [`Rng::gen_range`]. The blanket impls over
/// `T: SampleUniform` mirror the real crate so that integer-literal
/// inference flows through the range into the use site.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<G: RngCore>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                Self::sample_inclusive(rng, lo, hi - 1)
            }

            #[inline]
            fn sample_inclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                // Widening multiply maps a 64-bit word onto the span with
                // negligible bias for the table-sized spans used here.
                let offset = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                ((lo as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

impl SampleUniform for f64 {
    #[inline]
    fn sample_exclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample from empty range");
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    #[inline]
    fn sample_inclusive<G: RngCore>(rng: &mut G, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample from empty range");
        let unit = (rng.next_u64() as f64) * (1.0 / u64::MAX as f64);
        lo + unit * (hi - lo)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core does for fixed seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            // xoshiro256++ must not start from the all-zero state.
            let s = if s == [0; 4] { [0x9e37_79b9_7f4a_7c15, 1, 2, 3] } else { s };
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result =
                Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same =
            (0..100).filter(|_| a.gen_range(0u32..100) == c.gen_range(0u32..100)).count();
        assert!(same < 50, "different seeds should diverge, {same}/100 collisions");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..=5);
            assert!(w <= 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn bool_and_ratio_are_plausible() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
        let rare = (0..10_000).filter(|_| rng.gen_ratio(1, 100)).count();
        assert!(rare < 300, "{rare}");
    }
}

//! Cross-crate integration: the full pipeline from synthetic workload
//! generation through every compressor and back, verified lossless.

use tcgen_repro::tcgen_baselines::{BzipOnly, Mache, Pdats2, Sbc, Sequitur, TraceCompressor};
use tcgen_repro::tcgen_core::{Tcgen, TCGEN_A_SPEC, TCGEN_B_SPEC};
use tcgen_repro::tcgen_engine::EngineOptions;
use tcgen_repro::tcgen_tracegen::{generate_trace, suite, TraceKind, VpcTrace};

fn sample_traces(records: usize) -> Vec<(String, Vec<u8>)> {
    let programs = suite();
    let mut traces = Vec::new();
    for kind in TraceKind::ALL {
        for name in ["mcf", "equake", "perlbmk"] {
            let p = programs.iter().find(|p| p.name == name).expect("program in suite");
            traces
                .push((format!("{name}/{kind}"), generate_trace(p, kind, records).to_bytes()));
        }
    }
    traces
}

#[test]
fn every_compressor_roundtrips_every_sample_trace() {
    let engines = [
        ("TCgen(A)", Tcgen::from_spec(TCGEN_A_SPEC).unwrap()),
        ("TCgen(B)", Tcgen::from_spec(TCGEN_B_SPEC).unwrap()),
        ("VPC3", Tcgen::with_options(TCGEN_A_SPEC, EngineOptions::vpc3()).unwrap()),
    ];
    let baselines: Vec<Box<dyn TraceCompressor>> = vec![
        Box::new(Mache),
        Box::new(Pdats2),
        Box::new(Sbc),
        Box::new(Sequitur::default()),
        Box::new(BzipOnly),
    ];
    for (label, raw) in sample_traces(5_000) {
        for (name, engine) in &engines {
            let packed = engine.compress(&raw).unwrap();
            assert_eq!(engine.decompress(&packed).unwrap(), raw, "{name} failed on {label}");
        }
        for codec in &baselines {
            let packed = codec.compress(&raw).unwrap();
            assert_eq!(
                codec.decompress(&packed).unwrap(),
                raw,
                "{} failed on {label}",
                codec.name()
            );
        }
    }
}

#[test]
fn trace_serialization_is_stable_across_crates() {
    let p = suite().into_iter().find(|p| p.name == "art").unwrap();
    let trace = generate_trace(&p, TraceKind::StoreAddress, 2_000);
    let bytes = trace.to_bytes();
    let reparsed = VpcTrace::from_bytes(&bytes).unwrap();
    assert_eq!(reparsed, trace);
    // The engine accepts exactly this framing.
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
    let packed = tcgen.compress(&bytes).unwrap();
    assert_eq!(tcgen.decompress(&packed).unwrap(), bytes);
}

#[test]
fn containers_are_not_interchangeable_across_specs() {
    let a = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
    let b = Tcgen::from_spec(TCGEN_B_SPEC).unwrap();
    let raw = generate_trace(
        &suite().into_iter().find(|p| p.name == "swim").unwrap(),
        TraceKind::LoadValue,
        1_000,
    )
    .to_bytes();
    let packed = a.compress(&raw).unwrap();
    assert!(b.decompress(&packed).is_err(), "spec hash must catch the mismatch");
}

#[test]
fn usage_feedback_totals_match_record_counts() {
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
    let p = suite().into_iter().find(|p| p.name == "gcc").unwrap();
    let trace = generate_trace(&p, TraceKind::CacheMissAddress, 3_000);
    let (_, usage) = tcgen.compress_with_usage(&trace.to_bytes()).unwrap();
    for field in &usage.fields {
        assert_eq!(field.total() as usize, trace.records.len());
    }
}

#[test]
fn generated_rust_source_is_syntactically_plausible_for_all_suite_kinds() {
    // Without invoking rustc (covered in the codegen crate's tests),
    // sanity-check the generated code for several spec shapes.
    for spec_src in [
        TCGEN_A_SPEC,
        TCGEN_B_SPEC,
        "TCgen Trace Specification;\n8-Bit Field 1 = {: LV[1]};\nPC = Field 1;",
    ] {
        let tcgen = Tcgen::from_spec(spec_src).unwrap();
        let rust = tcgen.generate_rust();
        assert_eq!(rust.matches("fn main()").count(), 1);
        let opens = rust.matches('{').count();
        let closes = rust.matches('}').count();
        assert_eq!(opens, closes, "unbalanced braces in generated Rust");
        let c = tcgen.generate_c();
        assert_eq!(c.matches("int main").count(), 1);
        assert_eq!(c.matches('{').count(), c.matches('}').count());
    }
}

//! Deterministic (rate-based) checks of the paper's qualitative claims
//! at test scale. Timing claims are exercised by the bench harness, not
//! here, to keep tests robust on loaded machines.

use tcgen_repro::tcgen_baselines::{BzipOnly, Sequitur, TraceCompressor};
use tcgen_repro::tcgen_core::{Tcgen, TCGEN_A_SPEC};
use tcgen_repro::tcgen_engine::EngineOptions;
use tcgen_repro::tcgen_tracegen::{generate_trace, suite, TraceKind};

fn harmonic_mean(values: &[f64]) -> f64 {
    values.len() as f64 / values.iter().map(|v| 1.0 / v).sum::<f64>()
}

fn corpus_rates(codec: impl Fn(&[u8]) -> usize, kind: TraceKind, records: usize) -> f64 {
    let rates: Vec<f64> = suite()
        .iter()
        .filter(|p| p.includes(kind))
        .map(|p| {
            let raw = generate_trace(p, kind, records).to_bytes();
            raw.len() as f64 / codec(&raw) as f64
        })
        .collect();
    harmonic_mean(&rates)
}

/// §7.1: "TCgen delivers the best compression rate for each type of
/// trace and outperforms VPC3" — checked against VPC3 and BZIP2 here
/// (the full seven-way comparison is the bench harness's job).
#[test]
fn tcgen_beats_bzip2_on_every_trace_type() {
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
    for kind in TraceKind::ALL {
        let t = corpus_rates(|raw| tcgen.compress(raw).unwrap().len(), kind, 6_000);
        let b = corpus_rates(|raw| BzipOnly.compress(raw).unwrap().len(), kind, 6_000);
        assert!(t > b, "{kind}: TCgen rate {t:.2} should beat BZIP2 alone {b:.2}");
    }
}

#[test]
fn tcgen_at_least_matches_vpc3_on_harmonic_mean() {
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
    let vpc3 = Tcgen::with_options(TCGEN_A_SPEC, EngineOptions::vpc3()).unwrap();
    for kind in TraceKind::ALL {
        let t = corpus_rates(|raw| tcgen.compress(raw).unwrap().len(), kind, 6_000);
        let v = corpus_rates(|raw| vpc3.compress(raw).unwrap().len(), kind, 6_000);
        assert!(t >= v * 0.98, "{kind}: TCgen rate {t:.2} should not trail VPC3 {v:.2}");
    }
}

/// §7.1: "SEQUITUR underperforms TCgen by more than 100% on the
/// store-address traces" — strided sequences defeat the grammar.
#[test]
fn sequitur_loses_badly_on_store_addresses() {
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
    let t =
        corpus_rates(|raw| tcgen.compress(raw).unwrap().len(), TraceKind::StoreAddress, 6_000);
    let s = corpus_rates(
        |raw| Sequitur::default().compress(raw).unwrap().len(),
        TraceKind::StoreAddress,
        6_000,
    );
    assert!(t > 2.0 * s, "TCgen {t:.2} should more than double SEQUITUR {s:.2}");
}

/// §6.3's intuition: cache-miss traces are harder to compress than
/// store-address traces because the cache distorts the access patterns.
#[test]
fn cache_miss_traces_are_harder_than_store_traces() {
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC).unwrap();
    let store =
        corpus_rates(|raw| tcgen.compress(raw).unwrap().len(), TraceKind::StoreAddress, 6_000);
    let miss = corpus_rates(
        |raw| tcgen.compress(raw).unwrap().len(),
        TraceKind::CacheMissAddress,
        6_000,
    );
    assert!(store > miss, "store rate {store:.2} vs miss rate {miss:.2}");
}

/// Speed-only optimizations must not change what is written (§7.4:
/// "Disabling table sharing and using the unoptimized hash function do
/// not change the compression rate").
#[test]
fn speed_only_ablations_preserve_compressed_output() {
    let raw = generate_trace(
        &suite().into_iter().find(|p| p.name == "parser").unwrap(),
        TraceKind::CacheMissAddress,
        8_000,
    )
    .to_bytes();
    let reference = Tcgen::from_spec(TCGEN_A_SPEC).unwrap().compress(&raw).unwrap();
    for options in [EngineOptions::no_shared_tables(), EngineOptions::no_fast_hash()] {
        let packed =
            Tcgen::with_options(TCGEN_A_SPEC, options).unwrap().compress(&raw).unwrap();
        assert_eq!(packed, reference, "speed-only option changed the output bytes");
    }
}

/// Rate-affecting ablations genuinely change the streams.
#[test]
fn rate_ablations_change_compressed_output() {
    let raw = generate_trace(
        &suite().into_iter().find(|p| p.name == "crafty").unwrap(),
        TraceKind::CacheMissAddress,
        8_000,
    )
    .to_bytes();
    let reference = Tcgen::from_spec(TCGEN_A_SPEC).unwrap().compress(&raw).unwrap();
    for options in [EngineOptions::no_smart_update(), EngineOptions::no_type_minimization()] {
        let packed =
            Tcgen::with_options(TCGEN_A_SPEC, options).unwrap().compress(&raw).unwrap();
        assert_ne!(packed, reference, "{options:?} should alter the streams");
    }
}

/// The paper's Table 1 exclusion structure: 19 + 22 + 14 = 55 traces.
#[test]
fn the_corpus_is_55_traces() {
    let total: usize = TraceKind::ALL
        .iter()
        .map(|&kind| suite().iter().filter(|p| p.includes(kind)).count())
        .sum();
    assert_eq!(total, 55);
}

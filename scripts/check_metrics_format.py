#!/usr/bin/env python3
"""Validate a Prometheus text-format (0.0.4) exposition.

Usage:
  check_metrics_format.py METRICS.txt [--require NAME ...]
  curl -s http://HOST:PORT/metrics | check_metrics_format.py - [--require NAME ...]

Checks the scrape a `tcgen serve --metrics-addr` daemon produces (or
any 0.0.4 text exposition), using nothing outside the standard library:

- every sample line parses as `name[{labels}] value`, with metric and
  label names matching the Prometheus grammar and values parsing as
  floats (`+Inf`, `-Inf`, and `NaN` allowed);
- every family has at most one `# TYPE` line, appearing before the
  family's first sample, with a known metric type;
- histogram families expose `_bucket` series with cumulative,
  non-decreasing counts per label set, a final `le="+Inf"` bucket, and
  matching `_sum`/`_count` series (`_count` equal to the +Inf bucket);
- `--require NAME` (repeatable) asserts the named family exposes at
  least one sample — CI uses this to pin the serve metric set.

Exits non-zero with the offending line on the first failure.
"""

import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name, optional {labels}, value — whitespace-separated, no timestamp
# (the tcgen exposition never emits one).
SAMPLE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)\s*$")
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def fail(lineno, line, why):
    sys.exit(f"FAIL line {lineno}: {why}\n  {line}")


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)


def family_of(name):
    """The family a sample belongs to: histogram series names carry a
    `_bucket`/`_sum`/`_count` suffix on the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text, required):
    types = {}          # family -> declared type
    sampled = set()     # family names that exposed at least one sample
    # histogram family -> {non-le label tuple -> [(le, count), ...]}
    buckets = {}
    sums = {}           # (family, labels) -> value
    counts = {}         # (family, labels) -> value

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    fail(lineno, line, "malformed TYPE comment")
                _, _, family, mtype = parts
                if not METRIC_NAME.match(family):
                    fail(lineno, line, f"bad metric name '{family}'")
                if mtype not in TYPES:
                    fail(lineno, line, f"unknown metric type '{mtype}'")
                if family in types:
                    fail(lineno, line, f"duplicate TYPE for '{family}'")
                if family in sampled:
                    fail(lineno, line, f"TYPE for '{family}' after its samples")
                types[family] = mtype
            continue
        m = SAMPLE.match(line)
        if not m:
            fail(lineno, line, "unparsable sample line")
        name = m.group("name")
        labels = {}
        raw = m.group("labels")
        if raw is not None:
            matched = LABEL.findall(raw)
            # Reject stray text the label regex skipped over.
            rebuilt = ",".join(f'{k}="{v}"' for k, v in matched)
            if re.sub(r"\s|,", "", raw) != re.sub(r"\s|,", "", rebuilt):
                fail(lineno, line, f"malformed label set '{{{raw}}}'")
            for key, _ in matched:
                if not LABEL_NAME.match(key):
                    fail(lineno, line, f"bad label name '{key}'")
            labels = dict(matched)
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            fail(lineno, line, f"bad sample value '{m.group('value')}'")
        family = family_of(name)
        is_histogram = types.get(family) == "histogram" and name != family
        if not is_histogram:
            family = name
        sampled.add(family)
        if types.get(family) == "counter" and value < 0:
            fail(lineno, line, "negative counter value")
        if is_histogram:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    fail(lineno, line, "histogram bucket without an 'le' label")
                le = parse_value(labels["le"])
                buckets.setdefault(family, {}).setdefault(key, []).append(
                    (le, value, lineno, line)
                )
            elif name.endswith("_sum"):
                sums[(family, key)] = value
            elif name.endswith("_count"):
                counts[(family, key)] = value

    for family, series in buckets.items():
        for key, rows in series.items():
            prev_le, prev_count = float("-inf"), 0.0
            for le, count, lineno, line in rows:
                if le <= prev_le:
                    fail(lineno, line, "bucket 'le' bounds not increasing")
                if count < prev_count:
                    fail(lineno, line, "bucket counts not cumulative")
                prev_le, prev_count = le, count
            last_le, last_count, lineno, line = rows[-1]
            if last_le != float("inf"):
                fail(lineno, line, f"histogram '{family}' lacks a +Inf bucket")
            if (family, key) not in sums:
                fail(lineno, line, f"histogram '{family}' lacks a _sum series")
            total = counts.get((family, key))
            if total is None:
                fail(lineno, line, f"histogram '{family}' lacks a _count series")
            if total != last_count:
                fail(lineno, line, f"_count {total} != +Inf bucket {last_count}")

    missing = [name for name in required if name not in sampled]
    if missing:
        sys.exit(f"FAIL: required metric families missing: {', '.join(missing)}")
    print(
        f"ok   {len(sampled)} metric families, {len(types)} typed, "
        f"{len(buckets)} histogram(s)"
        + (f"; all {len(required)} required present" if required else "")
    )


def main():
    args = sys.argv[1:]
    if not args or args[0] in ("-h", "--help"):
        sys.exit(__doc__)
    path, rest = args[0], args[1:]
    required = []
    while rest:
        if rest[0] != "--require" or len(rest) < 2:
            sys.exit(__doc__)
        required.append(rest[1])
        rest = rest[2:]
    text = sys.stdin.read() if path == "-" else open(path).read()
    check(text, required)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compare a fresh `reproduce --json` run against the committed baseline.

Usage:
  check_bench_baseline.py BASELINE.json CURRENT.json
  check_bench_baseline.py --tune-report TUNE.json

Every algorithm in the suite is implemented in-repo and deterministic,
so per-(algorithm, trace kind) compressed sizes must match the baseline
exactly; any deviation means an engine change altered the emitted
streams and fails the check. Throughput numbers vary with the runner's
hardware and are printed for information only.

The `TCgen-fast` and `TCgen-balanced` profile rows are the exception:
their backends are free to improve their encodings, so their sizes are
reported but not enforced. Only the default `--profile max` container
(the `TCgen` row) is golden-pinned. The `checkpoint_speed` object is
likewise informational: checkpointed containers carry predictor-state
snapshots whose sizes and timings may evolve freely.

The --tune-report mode summarizes a `tcgen tune --json` report instead:
it prints the tuned-vs-default compressed-size ratio and the evaluation
spend. The ratio tracks auto-tuner quality over time but depends on the
trace and budget, so this mode is informational and always exits 0 (a
malformed report still fails).
"""

import json
import sys


# Profile rows whose compressed sizes are informational, not enforced:
# only the default max-profile container format is golden-pinned.
SIZE_INFORMATIONAL = {"TCgen-fast", "TCgen-balanced"}


def rows(path):
    with open(path) as f:
        data = json.load(f)
    return {(r["algorithm"], r["trace_kind"]): r for r in data["results"]}


def telemetry_overhead(path):
    """Prints the run's stats-on vs stats-off throughput, if recorded.

    Informational only: the byte-identity of telemetry is CI-gated
    elsewhere; this line just tracks the time cost of leaving a
    recorder attached so regressions are visible in the job log.
    """
    with open(path) as f:
        overhead = json.load(f).get("telemetry_overhead")
    if overhead is None:
        return
    print(
        f"telemetry overhead: {overhead['stats_off_mb_per_s']:.1f} MB/s stats-off, "
        f"{overhead['stats_on_mb_per_s']:.1f} MB/s stats-on, "
        f"fraction {overhead['overhead_fraction']:.4f} (informational)"
    )


def metrics_overhead(path):
    """Prints the serve-style metrics cost over a plain recorder, if
    recorded.

    Informational only, like `telemetry_overhead`: per-job histogram
    records and the window sampler run off the compression hot path, so
    this line just keeps their measured cost visible in the job log.
    """
    with open(path) as f:
        overhead = json.load(f).get("metrics_overhead")
    if overhead is None:
        return
    print(
        f"metrics overhead: {overhead['recorder_only_mb_per_s']:.1f} MB/s recorder-only, "
        f"{overhead['metrics_on_mb_per_s']:.1f} MB/s with histograms+sampler, "
        f"fraction {overhead['overhead_fraction']:.4f} (informational)"
    )


def decompress_deltas(baseline, current):
    """Prints per-algorithm decompress-throughput deltas vs the baseline.

    Informational only: throughput depends on the runner's hardware, so
    a delta never fails the check. The line makes decode-path speedups
    (and regressions) visible in the job log next to the size rows they
    ride with.
    """
    for key in sorted(baseline.keys() & current.keys()):
        b, c = baseline[key], current[key]
        bd, cd = b.get("decompress_mb_per_s"), c.get("decompress_mb_per_s")
        if not bd or not cd:
            continue
        delta = (cd / bd - 1.0) * 100.0
        print(
            f"note {'/'.join(key)}: decompress {cd:.1f} MB/s vs baseline "
            f"{bd:.1f} MB/s ({delta:+.0f}%; informational)"
        )


def profile_speed(baseline_path, path):
    """Prints the per-profile timing on the big reference trace, if recorded.

    Informational only: wall times depend on the runner, and the fast
    and balanced encodings are free to evolve. The line keeps the
    measured trade-off visible in the job log next to the sizes it
    buys, with decompress-throughput deltas against the baseline run.
    """
    with open(path) as f:
        speed = json.load(f).get("profile_speed")
    if speed is None:
        return
    with open(baseline_path) as f:
        base = json.load(f).get("profile_speed") or {"profiles": []}
    base_by_name = {p["profile"]: p for p in base["profiles"]}
    per = ", ".join(
        f"{p['profile']} {p['compress_s']:.3f}s/{p['compressed_bytes']}B"
        f" ({p['speedup_vs_max']:.2f}x)"
        for p in speed["profiles"]
    )
    print(
        f"profile speed on {speed['trace']} ({speed['records']} records, "
        f"{speed['original_bytes']} bytes): {per} (informational)"
    )
    for p in speed["profiles"]:
        cd = p.get("decompress_mb_per_s")
        bd = base_by_name.get(p["profile"], {}).get("decompress_mb_per_s")
        if not cd or not bd:
            continue
        delta = (cd / bd - 1.0) * 100.0
        print(
            f"note profile {p['profile']}: decompress {cd:.1f} MB/s vs baseline "
            f"{bd:.1f} MB/s ({delta:+.0f}%; informational)"
        )


def checkpoint_speed(path):
    """Prints the checkpointed-container rows, if recorded.

    Informational only: checkpointed sizes include predictor-state
    snapshots whose encodings are free to evolve, and decompression
    wall times depend on the runner's core count. Only the
    non-checkpointed max-profile rows in `results` are golden-pinned.
    """
    with open(path) as f:
        speed = json.load(f).get("checkpoint_speed")
    if speed is None:
        return
    per = ", ".join(
        f"interval {r['checkpoint_blocks']}/t{r['threads']} "
        f"{r['compressed_bytes']}B {r['decompress_s']:.3f}s decompress"
        for r in speed["rows"]
    )
    print(
        f"checkpoint speed on {speed['trace']} ({speed['records']} records, "
        f"block_records {speed['block_records']}): {per} (informational)"
    )


def service_speed(path):
    """Prints the `tcgen serve` request-throughput rows, if recorded.

    Informational only: requests per second and per-job latency depend
    entirely on the runner. The service's byte identity against direct
    CLI output is CI-gated separately; this line just keeps scheduling
    and framing overhead visible in the job log.
    """
    with open(path) as f:
        speed = json.load(f).get("service_speed")
    if speed is None:
        return
    per = ", ".join(
        f"{r['scenario']} {r['jobs']}x{r['records_per_job']} records: "
        f"{r['requests_per_s']:.1f} req/s, {r['mean_job_s']:.3f}s/job"
        for r in speed["rows"]
    )
    print(
        f"service speed on {speed['trace']} ({speed['records']} records): "
        f"{per} (informational)"
    )


def tune_report(path):
    with open(path) as f:
        report = json.load(f)
    base = report["base_container_bytes"]
    tuned = report["tuned_container_bytes"]
    final = base if report["used_base"] else tuned
    ratio = final / base if base else 1.0
    print(
        f"tune {path}: base {base} bytes, tuned {tuned} bytes, "
        f"ratio {ratio:.4f} ({report['evals']} evaluations over "
        f"{report['sample_records']} of {report['total_records']} records"
        f"{', kept base spec' if report['used_base'] else ''}; informational)"
    )
    if final > base:
        # The tuner's full-trace guard makes this impossible; reaching it
        # means the report is inconsistent.
        sys.exit(f"FAIL {path}: emitted spec is worse than the base spec")


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--tune-report":
        tune_report(sys.argv[2])
        return
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    baseline = rows(sys.argv[1])
    current = rows(sys.argv[2])
    failed = False
    for key in sorted(baseline.keys() | current.keys()):
        name = "/".join(key)
        b = baseline.get(key)
        c = current.get(key)
        if b is None or c is None:
            side = "baseline" if b is None else "current run"
            print(f"FAIL {name}: missing from the {side}")
            failed = True
            continue
        if b["compressed_bytes"] != c["compressed_bytes"]:
            if key[0] in SIZE_INFORMATIONAL:
                print(
                    f"note {name}: compressed size {c['compressed_bytes']} differs "
                    f"from baseline {b['compressed_bytes']} (informational profile row)"
                )
                continue
            print(
                f"FAIL {name}: compressed size {c['compressed_bytes']} deviates "
                f"from baseline {b['compressed_bytes']}"
            )
            failed = True
        else:
            print(
                f"ok   {name}: {c['compressed_bytes']} bytes "
                f"({c['compress_mb_per_s']:.1f} MB/s compress, "
                f"baseline {b['compress_mb_per_s']:.1f} MB/s; informational)"
            )
    decompress_deltas(baseline, current)
    telemetry_overhead(sys.argv[2])
    metrics_overhead(sys.argv[2])
    profile_speed(sys.argv[1], sys.argv[2])
    checkpoint_speed(sys.argv[2])
    service_speed(sys.argv[2])
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()

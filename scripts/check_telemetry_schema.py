#!/usr/bin/env python3
"""Validate the telemetry sinks' JSON output.

Usage:
  check_telemetry_schema.py SCHEMA.json REPORT.json
  check_telemetry_schema.py --chrome TRACE.json

The first form checks a `--stats-json` report (`Report::to_json`)
against `scripts/telemetry_schema.json`. The schema uses a small subset
of JSON Schema, implemented below so the check needs nothing outside
the standard library: `type`, `required`, `properties`,
`additionalProperties` (a schema applied to keys not named under
`properties`), `items`, and `minimum`.

The second form sanity-checks a `--trace-out` Chrome trace-event file:
it must carry a `traceEvents` array whose `ph == "M"` metadata events
name the process and its threads (including a `driver` track), and
whose `ph == "X"` duration events carry `name`/`ts`/`dur` and land on a
named track — the shape Perfetto and chrome://tracing render as one
lane per pool worker.

Both forms exit non-zero with the path of the first offending node.
"""

import json
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; a flag is never a valid count.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
}


def validate(instance, schema, path="$"):
    """Returns a list of "path: problem" strings; empty means valid."""
    expected = schema.get("type")
    if expected and not TYPE_CHECKS[expected](instance):
        return [f"{path}: expected {expected}, got {type(instance).__name__}"]
    errors = []
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} is below minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in instance:
                errors += validate(instance[key], sub, f"{path}.{key}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, value in instance.items():
                if key not in props:
                    errors += validate(value, extra, f"{path}.{key}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors += validate(item, schema["items"], f"{path}[{i}]")
    return errors


def check_report(schema_path, report_path):
    with open(schema_path) as f:
        schema = json.load(f)
    with open(report_path) as f:
        report = json.load(f)
    errors = validate(report, schema)
    if errors:
        print(f"FAIL {report_path}: does not match {schema_path}")
        for e in errors:
            print(f"  {e}")
        sys.exit(1)
    stages = len(report["stages"])
    counters = len(report["counters"])
    print(f"ok   {report_path}: schema valid ({stages} stages, {counters} counters)")


def check_chrome(trace_path):
    with open(trace_path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        sys.exit(f"FAIL {trace_path}: no traceEvents array")
    tracks = {}
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name":
            tracks[(e.get("pid"), e.get("tid"))] = e["args"]["name"]
    if "driver" not in tracks.values():
        sys.exit(f"FAIL {trace_path}: no 'driver' thread_name metadata event")
    durations = [e for e in events if e.get("ph") == "X"]
    if not durations:
        sys.exit(f"FAIL {trace_path}: no X duration events")
    for i, e in enumerate(durations):
        if not isinstance(e.get("name"), str):
            sys.exit(f"FAIL {trace_path}: X event {i} has no name")
        for key in ("ts", "dur"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                sys.exit(f"FAIL {trace_path}: X event {i} has bad {key}: {v!r}")
        if (e.get("pid"), e.get("tid")) not in tracks:
            sys.exit(f"FAIL {trace_path}: X event {i} targets an unnamed track")
    print(
        f"ok   {trace_path}: {len(durations)} duration events on "
        f"{len(tracks)} named tracks ({', '.join(sorted(tracks.values()))})"
    )


def main():
    if len(sys.argv) == 3 and sys.argv[1] == "--chrome":
        check_chrome(sys.argv[2])
        return
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    check_report(sys.argv[1], sys.argv[2])


if __name__ == "__main__":
    main()

//! Code generation: emit the customized C and Rust compressor sources
//! for the paper's Figure 5 specification, the way the TCgen tool does,
//! and write them next to the current directory.
//!
//! ```sh
//! cargo run --release --example codegen_c
//! cc -O3 -o vpc3_compressor vpc3_compressor.c     # then, optionally:
//! ./vpc3_compressor < some.trace > some.streams
//! ./vpc3_compressor -d < some.streams > roundtrip.trace
//! ```

use tcgen_repro::tcgen_core::{Tcgen, TCGEN_A_SPEC};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC)?;

    let c_source = tcgen.generate_c();
    std::fs::write("vpc3_compressor.c", &c_source)?;
    println!(
        "wrote vpc3_compressor.c ({} lines; single file, static functions, no macros)",
        c_source.lines().count()
    );

    let rust_source = tcgen.generate_rust();
    std::fs::write("vpc3_compressor.rs", &rust_source)?;
    println!(
        "wrote vpc3_compressor.rs ({} lines; same stream-file format as the C version)",
        rust_source.lines().count()
    );

    // The generated code starts with a commented copy of the canonical
    // specification, usable directly as TCgen input again.
    for line in c_source.lines().take(12) {
        println!("  | {line}");
    }
    Ok(())
}

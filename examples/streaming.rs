//! Streaming compression: process a trace through `std::io` readers and
//! writers one block at a time, the way the paper's tools stream multi-
//! gigabyte traces between disk and pipe without holding them in memory.
//!
//! ```sh
//! cargo run --release --example streaming
//! ```

use tcgen_repro::tcgen_engine::{compress_stream, decompress_stream, EngineOptions};
use tcgen_repro::tcgen_tracegen::{generate_trace, suite, TraceKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = tcgen_repro::tcgen_spec::parse(tcgen_repro::tcgen_core::TCGEN_A_SPEC)?;
    // Small blocks make the streaming visible: the compressor emits a
    // self-contained block every 50k records.
    let options = EngineOptions { block_records: 50_000, ..EngineOptions::tcgen() };

    let program = suite().into_iter().find(|p| p.name == "swim").expect("swim in suite");
    let raw = generate_trace(&program, TraceKind::StoreAddress, 400_000).to_bytes();

    let dir = std::env::temp_dir();
    let trace_path = dir.join("swim-store.trace");
    let packed_path = dir.join("swim-store.tcgz");
    std::fs::write(&trace_path, &raw)?;

    // File -> file, block by block.
    let mut input = std::io::BufReader::new(std::fs::File::open(&trace_path)?);
    let mut output = std::io::BufWriter::new(std::fs::File::create(&packed_path)?);
    compress_stream(&spec, &options, &mut input, &mut output)?;
    drop(output);

    let packed_len = std::fs::metadata(&packed_path)?.len();
    println!(
        "streamed {} bytes -> {} bytes (rate {:.1})",
        raw.len(),
        packed_len,
        raw.len() as f64 / packed_len as f64
    );

    // And back.
    let mut input = std::io::BufReader::new(std::fs::File::open(&packed_path)?);
    let mut restored = Vec::new();
    decompress_stream(&spec, &options, &mut input, &mut restored)?;
    assert_eq!(restored, raw);
    println!("streaming roundtrip verified ({} records)", (raw.len() - 4) / 12);
    Ok(())
}

//! Predictor tuning, the workflow the paper recommends in §7.5: "start
//! with a trace specification that covers a wide range of predictors and
//! then eliminate the useless predictors as determined by the predictor
//! usage information output after each compression."
//!
//! This example compresses a load-value trace with the generous TCgen(B)
//! configuration, inspects which predictors actually fire, derives a
//! pruned specification, and shows the pruned compressor performs
//! comparably with far smaller tables.
//!
//! ```sh
//! cargo run --release --example predictor_tuning
//! ```

use tcgen_repro::tcgen_core::{Tcgen, TCGEN_B_SPEC};
use tcgen_repro::tcgen_tracegen::{generate_trace, suite, TraceKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = suite().into_iter().find(|p| p.name == "equake").expect("equake in suite");
    let raw = generate_trace(&program, TraceKind::LoadValue, 150_000).to_bytes();

    // Step 1: compress with the wide configuration and study the usage.
    let wide = Tcgen::from_spec(TCGEN_B_SPEC)?;
    let (packed_wide, usage) = wide.compress_with_usage(&raw)?;
    println!("wide configuration (TCgen(B)):\n{usage}");

    // Step 2: keep only predictors whose slots fire for at least 2% of
    // the records of their field.
    let data_field = &usage.fields[1];
    let total = data_field.total().max(1) as f64;
    println!("slot survival for field 2 (>= 2% usage):");
    for (label, &count) in data_field.labels.iter().zip(&data_field.counts) {
        let share = count as f64 / total * 100.0;
        let verdict = if share >= 2.0 { "keep" } else { "prune" };
        println!("  {label:>12}  {share:5.1}%  {verdict}");
    }

    // Step 3: a hand-pruned specification based on that feedback (the
    // high-order FCM rarely fires on smooth FP data; DFCM + LV carry it).
    let pruned_spec = "\
TCgen Trace Specification;
32-Bit Header;
32-Bit Field 1 = {L1 = 1, L2 = 131072: FCM3[2], FCM1[2]};
64-Bit Field 2 = {L1 = 65536, L2 = 131072: DFCM3[2], DFCM1[2], LV[2]};
PC = Field 1;
";
    let pruned = Tcgen::from_spec(pruned_spec)?;
    let packed_pruned = pruned.compress(&raw)?;

    let rate = |packed: &[u8]| raw.len() as f64 / packed.len() as f64;
    println!(
        "\nwide:   rate {:6.1}, tables {:5.1} MB",
        rate(&packed_wide),
        wide.spec().table_bytes() as f64 / (1 << 20) as f64
    );
    println!(
        "pruned: rate {:6.1}, tables {:5.1} MB",
        rate(&packed_pruned),
        pruned.spec().table_bytes() as f64 / (1 << 20) as f64
    );
    assert_eq!(pruned.decompress(&packed_pruned)?, raw);
    Ok(())
}

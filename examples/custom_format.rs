//! Custom trace formats: the whole point of TCgen is that changing the
//! trace format only means changing the specification. This example
//! defines a three-field "extended" trace (opcode byte, PC, effective
//! address), synthesizes matching records, and compresses them.
//!
//! ```sh
//! cargo run --release --example custom_format
//! ```

use tcgen_repro::Tcgen;

/// An extended-trace record: one opcode byte, a 32-bit PC, and a 64-bit
/// effective address (13 bytes on disk, no header).
const SPEC: &str = "\
TCgen Trace Specification;
8-Bit Field 1 = {L1 = 256, L2 = 1024: FCM1[2], LV[2]};
32-Bit Field 2 = {L1 = 1, L2 = 65536: FCM3[2], FCM1[2]};
64-Bit Field 3 = {L1 = 4096, L2 = 65536: DFCM2[2], LV[2]};
PC = Field 2;
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tcgen = Tcgen::from_spec(SPEC)?;
    println!("{}", tcgen.canonical_spec());

    // Synthesize 100k records of a tight loop with a few opcodes and a
    // strided working set.
    let mut raw = Vec::new();
    let opcodes = [0x8b, 0x89, 0x01, 0x8b, 0xff]; // loads, stores, add, branch
    for i in 0..100_000u64 {
        let site = (i % 5) as usize;
        raw.push(opcodes[site]);
        raw.extend_from_slice(&(0x0040_1000 + site as u32 * 4).to_le_bytes());
        raw.extend_from_slice(&(0x7fff_0000 + (i / 5) * 16 + site as u64 * 8).to_le_bytes());
    }

    let packed = tcgen.compress(&raw)?;
    println!(
        "extended trace: {} -> {} bytes (rate {:.0})",
        raw.len(),
        packed.len(),
        raw.len() as f64 / packed.len() as f64
    );
    assert_eq!(tcgen.decompress(&packed)?, raw);
    println!("roundtrip verified");

    // The same format description also drives the code generator.
    let c_code = tcgen.generate_c();
    println!("generated C compressor for this format: {} lines", c_code.lines().count());
    Ok(())
}

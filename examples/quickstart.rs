//! Quickstart: compress a synthetic store-address trace with the paper's
//! Figure 5 configuration and verify lossless decompression.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tcgen_repro::tcgen_tracegen::{generate_trace, suite, TraceKind};
use tcgen_repro::Tcgen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The trace specification from the paper's Figure 5: a 32-bit header,
    // a 32-bit PC field, and a 64-bit data field with FCM/DFCM/LV
    // predictors — the VPC3 trace format.
    let tcgen = Tcgen::from_spec(tcgen_repro::tcgen_core::TCGEN_A_SPEC)?;
    println!("{}", tcgen.canonical_spec());

    // A synthetic stand-in for the gzip store-address trace.
    let program = suite().into_iter().find(|p| p.name == "gzip").expect("gzip in suite");
    let trace = generate_trace(&program, TraceKind::StoreAddress, 200_000);
    let raw = trace.to_bytes();

    let (packed, usage) = tcgen.compress_with_usage(&raw)?;
    println!(
        "compressed {} bytes to {} bytes (rate {:.1})",
        raw.len(),
        packed.len(),
        raw.len() as f64 / packed.len() as f64
    );

    // The predictor-usage feedback TCgen prints after each compression.
    println!("{usage}");

    let restored = tcgen.decompress(&packed)?;
    assert_eq!(restored, raw, "decompression must be lossless");
    println!("decompressed trace matches the original");
    Ok(())
}

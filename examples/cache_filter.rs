//! Cache-miss traces and a miniature Figure 6: run the paper's simulated
//! 16 kB direct-mapped data cache over a workload, collect the miss
//! trace, and compare all seven compression algorithms on it.
//!
//! ```sh
//! cargo run --release --example cache_filter
//! ```

use tcgen_repro::tcgen_baselines::{BzipOnly, Mache, Pdats2, Sbc, Sequitur, TraceCompressor};
use tcgen_repro::tcgen_core::{Tcgen, TCGEN_A_SPEC};
use tcgen_repro::tcgen_engine::EngineOptions;
use tcgen_repro::tcgen_tracegen::{generate_trace, suite, TraceKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // crafty's hash-table-heavy mix produces a hostile miss stream.
    let program = suite().into_iter().find(|p| p.name == "crafty").expect("crafty in suite");
    let trace = generate_trace(&program, TraceKind::CacheMissAddress, 150_000);
    let raw = trace.to_bytes();
    println!(
        "cache-miss-address trace for '{}': {} records, {} bytes",
        program.name,
        trace.records.len(),
        raw.len()
    );

    // TCgen and VPC3 via the engine...
    let tcgen = Tcgen::from_spec(TCGEN_A_SPEC)?;
    let vpc3 = Tcgen::with_options(TCGEN_A_SPEC, EngineOptions::vpc3())?;
    let mut rows: Vec<(String, usize)> = vec![
        ("TCgen".into(), tcgen.compress(&raw)?.len()),
        ("VPC3".into(), vpc3.compress(&raw)?.len()),
    ];
    // ... and the special-purpose baselines.
    let baselines: Vec<Box<dyn TraceCompressor>> = vec![
        Box::new(Sbc),
        Box::new(Sequitur::default()),
        Box::new(Mache),
        Box::new(Pdats2),
        Box::new(BzipOnly),
    ];
    for codec in &baselines {
        rows.push((codec.name().to_string(), codec.compress(&raw)?.len()));
    }

    rows.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    println!("\n{:<10} {:>12} {:>8}", "algorithm", "bytes", "rate");
    for (name, size) in rows {
        println!("{:<10} {:>12} {:>8.1}", name, size, raw.len() as f64 / size as f64);
    }
    Ok(())
}
